package graph

import (
	"strings"
	"testing"

	"repro/internal/macro"
	"repro/internal/operator"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/source"
	"repro/internal/value"
)

func build(t *testing.T, src string) *Program {
	t.Helper()
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags.Err())
	}
	info := sema.Analyze(macro.ExpandProgram(prog, &diags), operator.Builtins(), &diags)
	if diags.HasErrors() {
		t.Fatalf("analyze: %v", diags.Err())
	}
	g := Build(info, &diags)
	if diags.HasErrors() {
		t.Fatalf("build: %v", diags.Err())
	}
	return g
}

func kinds(t *Template) map[NodeKind]int {
	m := make(map[NodeKind]int)
	for _, n := range t.Nodes {
		m[n.Kind]++
	}
	return m
}

func TestBuildSimpleCall(t *testing.T) {
	g := build(t, "main() add(1, 2)")
	m := g.Main
	if m == nil {
		t.Fatal("main template missing")
	}
	k := kinds(m)
	if k[ConstNode] != 2 || k[OpNode] != 1 {
		t.Errorf("kinds = %v", k)
	}
	op := m.Nodes[m.Result]
	if op.Kind != OpNode || op.Name != "add" || op.NIn != 2 {
		t.Errorf("result node = %+v", op)
	}
	if op.Op == nil {
		t.Error("operator unresolved")
	}
}

func TestBuildParamsAndFanOut(t *testing.T) {
	g := build(t, "main(x) add(x, mul(x, x))")
	m := g.Main
	if m.NParams != 1 {
		t.Fatalf("NParams = %d", m.NParams)
	}
	param := m.Nodes[0]
	if param.Kind != ParamNode {
		t.Fatalf("node 0 = %v", param.Kind)
	}
	// x fans out to three ports: add port 0, mul ports 0 and 1.
	if len(param.Out) != 3 {
		t.Errorf("param fan-out = %d, want 3", len(param.Out))
	}
}

func TestBuildLetForwardReference(t *testing.T) {
	g := build(t, `
main()
  let a = incr(b)
      b = incr(1)
  in a
`)
	if err := g.Main.Validate(); err != nil {
		t.Fatal(err)
	}
	// Result is incr(b); its input chain reaches incr(1).
	res := g.Main.Nodes[g.Main.Result]
	if res.Kind != OpNode || res.Name != "incr" {
		t.Errorf("result = %+v", res)
	}
}

func TestBuildDetupleWithOperator(t *testing.T) {
	var diags source.DiagList
	prog := parser.Parse("t.dlr", `
main()
  let <a, b> = pair()
  in add(a, b)
`, &diags)
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{Name: "pair", Arity: 0, Fn: dummyFn})
	info := sema.Analyze(prog, reg, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	g := Build(info, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	k := kinds(g.Main)
	if k[DetupleNode] != 2 {
		t.Errorf("kinds = %v, want 2 detuple nodes", k)
	}
	for _, n := range g.Main.Nodes {
		if n.Kind == DetupleNode && (n.Index < 0 || n.Index > 1) {
			t.Errorf("detuple index = %d", n.Index)
		}
	}
}

func TestBuildConditional(t *testing.T) {
	g := build(t, "main(x) if lt(x, 0) then neg(x) else x")
	m := g.Main
	var cond *Node
	for _, n := range m.Nodes {
		if n.Kind == CondNode {
			cond = n
		}
	}
	if cond == nil {
		t.Fatal("cond node missing")
	}
	if cond.Then == nil || cond.Else == nil {
		t.Fatal("branches missing")
	}
	// Both branches share the free-name parameter list [x].
	if cond.Then.NParams != 1 || cond.Else.NParams != 1 {
		t.Errorf("branch params: then=%d else=%d", cond.Then.NParams, cond.Else.NParams)
	}
	// cond input 0 is the test; port 1 carries x.
	if cond.NIn != 2 {
		t.Errorf("cond NIn = %d, want 2", cond.NIn)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildFunctionCallWithCaptures(t *testing.T) {
	g := build(t, `
main(k)
  let addk(v) add(v, k)
  in addk(5)
`)
	var call *Node
	for _, n := range g.Main.Nodes {
		if n.Kind == CallNode {
			call = n
		}
	}
	if call == nil {
		t.Fatal("call node missing")
	}
	// One user argument plus one forwarded capture.
	if call.NIn != 2 {
		t.Errorf("call NIn = %d, want 2 (arg + capture)", call.NIn)
	}
	lifted := call.Callee
	if lifted == nil {
		t.Fatal("callee unlinked")
	}
	if lifted.NParams != 1 || lifted.NCaptures != 1 {
		t.Errorf("callee params=%d captures=%d", lifted.NParams, lifted.NCaptures)
	}
}

func TestBuildClosureCreation(t *testing.T) {
	g := build(t, `
double(x) mul(x, 2)
apply(f, v) f(v)
main() apply(double, 5)
`)
	var mk *Node
	for _, n := range g.Main.Nodes {
		if n.Kind == MakeClosureNode {
			mk = n
		}
	}
	if mk == nil {
		t.Fatal("make-closure node missing in main")
	}
	if mk.Callee == nil || mk.Callee.Name != "double" {
		t.Errorf("closure callee = %+v", mk.Callee)
	}
	applyT := g.Templates["apply"]
	var cc *Node
	for _, n := range applyT.Nodes {
		if n.Kind == CallClosureNode {
			cc = n
		}
	}
	if cc == nil {
		t.Fatal("call-closure node missing in apply")
	}
	if cc.NIn != 2 {
		t.Errorf("call-closure NIn = %d, want 2 (closure + arg)", cc.NIn)
	}
}

func TestBuildIterateLowering(t *testing.T) {
	g := build(t, `
main(n)
  iterate { i = 0, incr(i) } while lt(i, n), result i
`)
	// The iterate produced a hidden loop template.
	var loop *Template
	for name, tmpl := range g.Templates {
		if strings.Contains(name, "$loop") {
			loop = tmpl
		}
	}
	if loop == nil {
		t.Fatal("loop template missing")
	}
	if !loop.Recursive {
		t.Error("loop template must be recursive")
	}
	if loop.NParams != 1 || loop.NCaptures != 1 {
		t.Errorf("loop params=%d captures=%d, want 1 and 1 (i; n)", loop.NParams, loop.NCaptures)
	}
	// The loop's cond node's then-branch tail-calls the loop.
	var cond *Node
	for _, n := range loop.Nodes {
		if n.Kind == CondNode {
			cond = n
		}
	}
	if cond == nil {
		t.Fatal("loop cond missing")
	}
	tailCall := cond.Then.Nodes[cond.Then.Result]
	if tailCall.Kind != CallNode || !tailCall.Tail {
		t.Errorf("then-branch result = %+v, want tail call", tailCall)
	}
	if tailCall.Callee != loop {
		t.Error("tail call should target the loop template itself")
	}
	// The initial call from main is not a tail call.
	var initCall *Node
	for _, n := range g.Main.Nodes {
		if n.Kind == CallNode {
			initCall = n
		}
	}
	if initCall == nil || initCall.Tail {
		t.Errorf("initial loop call = %+v", initCall)
	}
}

func TestBuildQueensValidates(t *testing.T) {
	var diags source.DiagList
	prog := parser.Parse("q.dlr", `
main()
  let board = empty_board()
  in show_solutions(do_it(board,1))
do_it(board,queen)
  let h1 = try(board,queen,1)
      h2 = try(board,queen,2)
  in merge(h1,h2)
try(board,queen,location)
  let new_board = add_queen(board,queen,location)
  in if is_valid(new_board)
      then if is_equal(queen,8)
            then new_board
            else do_it(new_board,incr(queen))
      else NULL
`, &diags)
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{Name: "empty_board", Arity: 0, Fn: dummyFn})
	reg.MustRegister(&operator.Operator{Name: "show_solutions", Arity: 1, Fn: dummyFn})
	reg.MustRegister(&operator.Operator{Name: "add_queen", Arity: 3, Fn: dummyFn})
	reg.MustRegister(&operator.Operator{Name: "is_valid", Arity: 1, Fn: dummyFn})
	info := sema.Analyze(prog, reg, &diags)
	g := Build(info, &diags)
	if diags.HasErrors() {
		t.Fatalf("queens build: %v", diags.Err())
	}
	if g.Templates["do_it"] == nil || !g.Templates["do_it"].Recursive {
		t.Error("do_it should be a recursive template")
	}
	if g.NodeCount() < 20 {
		t.Errorf("NodeCount = %d, implausibly small", g.NodeCount())
	}
}

func TestValidateCatchesBrokenGraphs(t *testing.T) {
	// Unfed port.
	bad := &Template{Name: "bad", NParams: 0}
	bad.add(&Node{Kind: OpNode, Name: "x", NIn: 1, Op: &operator.Operator{Name: "x", Arity: 1, Fn: dummyFn}})
	bad.Result = 0
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "fed 0 times") {
		t.Errorf("Validate = %v", err)
	}
	// Result out of range.
	bad2 := &Template{Name: "bad2", Result: 5}
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("Validate = %v", err)
	}
	// Edge to missing node.
	bad3 := &Template{Name: "bad3"}
	bad3.add(&Node{Kind: ConstNode, Const: valueInt(1), Out: []Edge{{To: 9, Port: 0}}})
	bad3.Result = 0
	if err := bad3.Validate(); err == nil || !strings.Contains(err.Error(), "missing node") {
		t.Errorf("Validate = %v", err)
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	src := `
helper(a) mul(a, 3)
main(n)
  let x = helper(n)
  in iterate { i = x, incr(i) } while lt(i, 10), result i
`
	var diags source.DiagList
	prog := parser.Parse("t.dlr", src, &diags)
	info := sema.Analyze(macro.ExpandProgram(prog, &diags), operator.Builtins(), &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	seq := Build(info, &diags)

	// Parallel-style: per-function BuildFunc then merge + link.
	par := &Program{Templates: make(map[string]*Template), Registry: info.Registry}
	for _, name := range info.Order {
		for _, tmpl := range BuildFunc(info, info.Funcs[name].Decl, &diags) {
			par.Templates[tmpl.Name] = tmpl
		}
	}
	Link(par, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	if len(par.Templates) != len(seq.Templates) {
		t.Fatalf("template counts differ: %d vs %d", len(par.Templates), len(seq.Templates))
	}
	for name, st := range seq.Templates {
		pt, ok := par.Templates[name]
		if !ok {
			t.Fatalf("template %s missing from parallel build", name)
		}
		if len(pt.Nodes) != len(st.Nodes) || pt.Result != st.Result {
			t.Errorf("template %s differs: %d/%d nodes, result %d/%d",
				name, len(pt.Nodes), len(st.Nodes), pt.Result, st.Result)
		}
	}
}

func TestDotOutput(t *testing.T) {
	g := build(t, "main(x) if lt(x, 0) then neg(x) else add(x, 1)")
	dot := g.Dot()
	for _, want := range []string{"digraph delirium", "cluster_", "cond", "diamond", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
	single := DotTemplate(g.Main)
	if !strings.Contains(single, "digraph template") {
		t.Error("DotTemplate header missing")
	}
}

func TestNodeKindStrings(t *testing.T) {
	for k := ParamNode; k <= DetupleNode; k++ {
		if strings.Contains(k.String(), "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if !strings.Contains(NodeKind(99).String(), "99") {
		t.Error("unknown kind should embed value")
	}
}

func TestTemplateFuncRef(t *testing.T) {
	g := build(t, "f(a, b) add(a, b)\nmain() f(1, 2)")
	f := g.Templates["f"]
	if f.FuncName() != "f" || f.ParamCount() != 2 || f.NumArgs() != 2 {
		t.Errorf("FuncRef: %q %d %d", f.FuncName(), f.ParamCount(), f.NumArgs())
	}
}

func valueInt(n int64) value.Value { return value.Int(n) }

var dummyFn operator.Func = func(_ operator.Context, _ []value.Value) (value.Value, error) {
	return value.Null{}, nil
}

func TestMarkSpreadOnDecomposition(t *testing.T) {
	var diags source.DiagList
	prog := parser.Parse("t.dlr", `
main()
  let <a, b, c> = trio()
  in add(a, add(b, c))
`, &diags)
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{Name: "trio", Arity: 0, Fn: dummyFn})
	info := sema.Analyze(prog, reg, &diags)
	g := Build(info, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	var producer *Node
	detuples := 0
	var designee *Node
	for _, n := range g.Main.Nodes {
		switch n.Kind {
		case OpNode:
			if n.Name == "trio" {
				producer = n
			}
		case DetupleNode:
			detuples++
			if !n.SpreadConsumer {
				t.Errorf("detuple %d not marked SpreadConsumer", n.ID)
			}
			if n.CoveredIdx != nil {
				if designee != nil {
					t.Error("more than one designated releaser")
				}
				designee = n
			}
		}
	}
	if producer == nil || !producer.Spread {
		t.Fatalf("producer not marked Spread: %+v", producer)
	}
	if detuples != 3 {
		t.Errorf("detuples = %d, want 3", detuples)
	}
	if designee == nil || len(designee.CoveredIdx) != 3 {
		t.Fatalf("designee = %+v", designee)
	}
	for i, idx := range designee.CoveredIdx {
		if idx != i {
			t.Errorf("CoveredIdx = %v, want [0 1 2]", designee.CoveredIdx)
		}
	}
}

func TestNoSpreadWhenTupleAlsoUsedWhole(t *testing.T) {
	var diags source.DiagList
	prog := parser.Parse("t.dlr", `
main()
  let t = <1, 2>
      <a, b> = t
  in add(tuple_len(t), add(a, b))
`, &diags)
	info := sema.Analyze(prog, operator.Builtins(), &diags)
	g := Build(info, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	for _, n := range g.Main.Nodes {
		if n.Kind == TupleNode && n.Spread {
			t.Error("tuple with a non-detuple consumer must not be Spread")
		}
	}
}

func TestNoSpreadOnSingleDetuple(t *testing.T) {
	var diags source.DiagList
	prog := parser.Parse("t.dlr", `
main()
  let <a> = <5>
  in a
`, &diags)
	info := sema.Analyze(prog, operator.Builtins(), &diags)
	g := Build(info, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	for _, n := range g.Main.Nodes {
		if n.Spread {
			t.Error("single-consumer producer should use the normal transfer path")
		}
	}
}
