// Package graph defines coordination graphs, the executable form of a
// Delirium program (§7). The compiler converts each function into a
// subgraph called a template; edges represent data paths and nodes
// represent sequential operators. When all the incoming arcs of a node
// carry data the node is scheduled for execution.
//
// Coordination graphs are a flexible form of dataflow graph designed for
// efficient software implementation: subgraphs can be passed between
// operators as closure values, and a call-closure operator expands a
// subgraph dynamically at run time, which makes recursion, tail recursion,
// and closures direct to express.
package graph

import (
	"fmt"
	"sync"

	"repro/internal/operator"
	"repro/internal/source"
	"repro/internal/value"
)

// NodeKind discriminates coordination-graph nodes.
type NodeKind int

// Node kinds.
const (
	// ParamNode produces the activation's i-th argument (filled at
	// activation creation; never scheduled).
	ParamNode NodeKind = iota
	// ConstNode produces a compile-time constant (filled at activation
	// creation; never scheduled).
	ConstNode
	// OpNode applies a registered sequential operator to its inputs.
	OpNode
	// CallNode expands a statically-known callee template with the node's
	// inputs as arguments (user arguments followed by forwarded captures).
	CallNode
	// CallClosureNode is the special call-closure operator: input 0 is a
	// closure value whose subgraph is expanded with inputs 1..n as
	// arguments and the closure environment appended.
	CallClosureNode
	// CondNode evaluates input 0 as the test and expands the Then or Else
	// branch subtemplate with inputs 1..n as arguments.
	CondNode
	// MakeClosureNode builds a closure value from the callee template and
	// the node's inputs (the captured values).
	MakeClosureNode
	// TupleNode packages its inputs into a multiple-value package.
	TupleNode
	// DetupleNode extracts element Index (0-based) of its tuple input.
	DetupleNode
)

// String names the node kind for DOT output and debugging.
func (k NodeKind) String() string {
	switch k {
	case ParamNode:
		return "param"
	case ConstNode:
		return "const"
	case OpNode:
		return "op"
	case CallNode:
		return "call"
	case CallClosureNode:
		return "call-closure"
	case CondNode:
		return "cond"
	case MakeClosureNode:
		return "make-closure"
	case TupleNode:
		return "tuple"
	case DetupleNode:
		return "detuple"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Edge connects a producer's output to one input port of a consumer node.
type Edge struct {
	To   int // consumer node id within the same template
	Port int // input port index on the consumer
}

// Node is one vertex of a template. Nodes are immutable after linking, so
// templates can be shared by every processor (the paper replicates
// templates in processor-local memory, §7).
type Node struct {
	ID   int
	Kind NodeKind
	// Name is the operator or callee name (OpNode, CallNode,
	// MakeClosureNode) or a debug label.
	Name string
	// NIn is the number of input ports.
	NIn int
	// Out lists the consumers of this node's single output.
	Out []Edge
	// Const holds the value of a ConstNode; Index the parameter slot of a
	// ParamNode or the element index of a DetupleNode.
	Const value.Value
	Index int
	// Op is the resolved operator of an OpNode.
	Op *operator.Operator
	// Callee is the resolved callee template (CallNode, MakeClosureNode),
	// filled by linking.
	Callee *Template
	// Then and Else are the branch subtemplates of a CondNode.
	Then, Else *Template
	// Tail marks a CallNode or CallClosureNode in tail position; the
	// runtime replaces the current activation instead of nesting (§7).
	Tail bool
	// Spread marks a producer whose consumers are exclusively DetupleNodes
	// with pairwise-distinct indices — the compiled form of a
	// multiple-value decomposition. The runtime then splits ownership of
	// the package's elements among the consumers instead of retaining the
	// whole package per consumer, so a split operator's pieces stay
	// exclusively owned and the copy-on-write machinery stays idle
	// (§2.1's zero-copy splits). Computed by Link.
	Spread bool
	// SpreadConsumer marks a DetupleNode fed by a Spread producer: it
	// takes ownership of element Index only.
	SpreadConsumer bool
	// CoveredIdx, set on one designated consumer of a Spread producer,
	// lists every element index some sibling extracts; the designee
	// releases the uncovered elements.
	CoveredIdx []int
	// Pos points back at the source expression for node timing listings.
	Pos source.Pos

	// The Mem* fields are stamped by the optional memory-plan pass
	// (internal/opt.PlanMemory) and are all false/nil in unplanned programs.

	// MemOwned marks a node whose output the plan proves exclusively owned:
	// every block reachable from it has refcount 1 when it leaves the node.
	// The runtime enforces the claim at OpNodes (copying any shared result
	// block), which is what lets consumers trust it without checking.
	MemOwned bool
	// MemOwnedArgs marks, per input port, values proven exclusively owned on
	// arrival: the producer's output is owned and this is its only consumer.
	// A destructive operator may take such an argument in place without the
	// Writable walk, and a port whose value dies here may skip the atomic
	// release and recycle the payload.
	MemOwnedArgs []bool
	// MemTransferEnv marks a CallClosureNode that transfers the closure's
	// environment references directly to the callee activation, eliding the
	// per-value retain (for the callee) + release (of the closure) pair.
	MemTransferEnv bool

	// The fusion fields are stamped by the optional operator-fusion pass
	// (internal/opt.FuseGraph) and are all zero in unfused programs.

	// Fused marks a node that belongs to a fused supernode: it is never
	// scheduled individually — external deliveries gate on the cluster head
	// instead, and the whole cluster executes as one straight-line dispatch.
	Fused bool
	// FuseHead is the cluster head's node id (meaningful only when Fused).
	FuseHead int
	// FuseCluster, set only on the cluster head, describes the supernode.
	FuseCluster *Cluster
	// FuseInternalOut marks a non-tail cluster member: its single out edge
	// stays inside the cluster, so the produced value is stored straight
	// into the next member's input slot with no counter decrement and no
	// ready-queue round trip.
	FuseInternalOut bool
	// BLevel is the node's static bottom level: the weight of the longest
	// chain from this node to any sink of its template, with operator
	// weights seeded from a delprof profile when one was supplied (unit
	// weights otherwise). The real executor uses it as a tie-break priority
	// so the longest remaining chain is pulled first.
	BLevel int64

	// The Aff* fields are stamped by the optional affinity-plan pass
	// (internal/opt.PlanAffinity) and are zero in unplanned programs. They
	// are advisory placement hints only: executors consult them to decide
	// WHERE a ready node runs, never WHETHER or with WHAT inputs, so
	// enabling them can never change results.

	// AffPreferred is the node id of this node's preferred producer: the
	// input edge whose value (typically an exclusively-owned block, per the
	// memory plan) this node should inherit hot in the producer's cache.
	// -1 when the pass found no single-consumer producer edge (or did not
	// run — but the zero value is only meaningful under Program.AffinityPlanned).
	AffPreferred int
	// AffHeavy marks a node on a heavy chain (top tier by bottom level):
	// preferred dispatch keeps it on its producer's worker, while light
	// nodes are left free to migrate to thieves.
	AffHeavy bool
}

// Cluster describes one fused supernode: a chain (or delay-free small tree)
// of single-consumer nodes the runtime dispatches once and executes as a
// straight-line sequence. The fusion pass guarantees that every external
// input of every member is an ancestor of the head (or a param/const filled
// at activation creation), so gating the whole cluster on the head never
// delays it past the moment the unfused head would have fired — fusion is
// parallelism-neutral by construction.
type Cluster struct {
	// Index is the cluster's ordinal within its template (dot rendering).
	Index int
	// Head is the first member in execution order; the cluster schedules
	// and gates under this node's identity.
	Head int
	// Nodes lists the members in execution (topological) order; Nodes[0] is
	// the head and the final entry is the tail, the only member whose
	// output leaves the cluster.
	Nodes []int
	// ExtIn is the number of input edges arriving from outside the cluster
	// — the head's initial ready counter.
	ExtIn int
}

// Template is the compiled subgraph of one function (§7). The run-time
// system executes small data structures called template activations which
// contain enough buffer space to evaluate the template once, plus a pointer
// back to the template.
type Template struct {
	// Name is the unique function name ("" only for anonymous branch
	// subtemplates, which get a synthetic name).
	Name string
	// NParams is the user-visible parameter count; NCaptures the number of
	// trailing capture parameters. An activation takes NParams + NCaptures
	// arguments.
	NParams   int
	NCaptures int
	// Recursive functions expand at the lowest ready-queue priority.
	Recursive bool
	// Nodes in creation order; Nodes[i].ID == i.
	Nodes []*Node
	// Result is the node whose output is the template's value.
	Result int
	// Clusters lists the fused supernodes of this template (empty unless
	// the fusion pass ran). Used by the dot renderer and reports; the
	// runtime reaches clusters through Node.FuseCluster.
	Clusters []*Cluster

	layoutOnce sync.Once
	inOff      []int // input-buffer offset per node
	totIn      int   // total input slots
}

// Layout returns, computing once, the per-node offsets into a flat input
// buffer and the buffer's total size. A template activation allocates
// exactly this much value space — the paper's "enough data buffer space to
// execute the given subgraph" (§7).
func (t *Template) Layout() (offsets []int, total int) {
	t.layoutOnce.Do(func() {
		t.inOff = make([]int, len(t.Nodes))
		for i, n := range t.Nodes {
			t.inOff[i] = t.totIn
			t.totIn += n.NIn
		}
	})
	return t.inOff, t.totIn
}

// FuncName implements value.FuncRef.
func (t *Template) FuncName() string { return t.Name }

// ParamCount implements value.FuncRef: the argument count a caller of a
// closure over this template must supply.
func (t *Template) ParamCount() int { return t.NParams }

// NumArgs returns the total activation argument count (params + captures).
func (t *Template) NumArgs() int { return t.NParams + t.NCaptures }

// add appends a node, assigning its ID.
func (t *Template) add(n *Node) int {
	n.ID = len(t.Nodes)
	t.Nodes = append(t.Nodes, n)
	return n.ID
}

// connect wires producer from to port p of consumer to.
func (t *Template) connect(from, to, port int) {
	t.Nodes[from].Out = append(t.Nodes[from].Out, Edge{To: to, Port: port})
}

// Validate checks structural invariants: edge targets in range, port
// indices within the consumer's arity, every non-source node's ports all
// fed exactly once, and the result node present. The compiler validates
// every template it emits; the check is cheap and runs once.
func (t *Template) Validate() error {
	if t.Result < 0 || t.Result >= len(t.Nodes) {
		return fmt.Errorf("template %s: result node %d out of range", t.Name, t.Result)
	}
	fed := make([][]int, len(t.Nodes))
	for i, n := range t.Nodes {
		if n.ID != i {
			return fmt.Errorf("template %s: node %d has ID %d", t.Name, i, n.ID)
		}
		fed[i] = make([]int, n.NIn)
	}
	for _, n := range t.Nodes {
		for _, e := range n.Out {
			if e.To < 0 || e.To >= len(t.Nodes) {
				return fmt.Errorf("template %s: node %d edge to missing node %d", t.Name, n.ID, e.To)
			}
			if e.Port < 0 || e.Port >= t.Nodes[e.To].NIn {
				return fmt.Errorf("template %s: node %d edge to node %d port %d out of range (NIn=%d)",
					t.Name, n.ID, e.To, e.Port, t.Nodes[e.To].NIn)
			}
			fed[e.To][e.Port]++
		}
	}
	for i, ports := range fed {
		for p, c := range ports {
			if c != 1 {
				return fmt.Errorf("template %s: node %d (%s) port %d fed %d times",
					t.Name, i, t.Nodes[i].Kind, p, c)
			}
		}
	}
	for _, n := range t.Nodes {
		switch n.Kind {
		case ParamNode:
			if n.Index < 0 || n.Index >= t.NumArgs() {
				return fmt.Errorf("template %s: param node %d slot %d out of range", t.Name, n.ID, n.Index)
			}
		case ConstNode:
			if n.Const == nil {
				return fmt.Errorf("template %s: const node %d has no value", t.Name, n.ID)
			}
		case OpNode:
			if n.Op == nil {
				return fmt.Errorf("template %s: op node %d (%s) unresolved", t.Name, n.ID, n.Name)
			}
		case CondNode:
			if n.Then == nil || n.Else == nil {
				return fmt.Errorf("template %s: cond node %d missing branches", t.Name, n.ID)
			}
			if err := n.Then.Validate(); err != nil {
				return err
			}
			if err := n.Else.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// MemoryWords estimates the template's resident size in 8-byte words:
// node descriptors, edge lists, and branch subtemplates. Templates are
// immutable and shared (the paper replicates them per processor because
// they represent over 80% of the runtime system's memory, §7); this
// figure feeds the mem experiment that checks the claim.
func (t *Template) MemoryWords() int {
	const nodeWords = 16 // Node struct fields
	words := 8           // template header
	for _, n := range t.Nodes {
		words += nodeWords + 2*len(n.Out) + len(n.CoveredIdx)
		if n.Kind == CondNode {
			words += n.Then.MemoryWords() + n.Else.MemoryWords()
		}
	}
	return words
}

// ActivationWords is the per-activation buffer size in words: one value
// slot per input port plus one counter per node (§7: "enough data buffer
// space to execute the given subgraph").
func (t *Template) ActivationWords() int {
	_, total := t.Layout()
	return 4 + 2*total + len(t.Nodes)
}

// CountNodes returns the node count including branch subtemplates.
func (t *Template) CountNodes() int {
	n := len(t.Nodes)
	for _, nd := range t.Nodes {
		if nd.Kind == CondNode {
			n += nd.Then.CountNodes() + nd.Else.CountNodes()
		}
	}
	return n
}

// Program is a linked set of templates ready for execution.
type Program struct {
	// Templates maps unique names (including generated loop templates) to
	// subgraphs.
	Templates map[string]*Template
	// Main is the entry template, nil if the program defines none.
	Main *Template
	// Registry resolves operators at execution time (already resolved into
	// OpNodes; kept for tooling).
	Registry *operator.Registry
	// MemPlanned records that the memory-plan pass ran over this program;
	// the executors then activate the planned settle paths and per-worker
	// block free lists.
	MemPlanned bool
	// Fused records that the operator-fusion pass ran over this program;
	// the executors then dispatch fused clusters as supernodes and order
	// ready nodes by their static bottom levels.
	Fused bool
	// AffinityPlanned records that the affinity-plan pass ran over this
	// program; executors configured with AffinityHints then activate
	// producer-preferred dispatch and batched, locality-ranked stealing.
	AffinityPlanned bool
}

// MemoryWords totals template memory over the program.
func (p *Program) MemoryWords() int {
	w := 0
	for _, t := range p.Templates {
		w += t.MemoryWords()
	}
	return w
}

// NodeCount totals nodes over all templates, including branch subtemplates.
func (p *Program) NodeCount() int {
	n := 0
	for _, t := range p.Templates {
		n += t.CountNodes()
	}
	return n
}

// Template returns a template by name.
func (p *Program) Template(name string) (*Template, bool) {
	t, ok := p.Templates[name]
	return t, ok
}
