package compile

import (
	"fmt"
	"math/rand"
	"strings"
)

// Generate produces a deterministic synthetic Delirium program with
// approximately nFuncs functions, used as the compiler workload for the
// Table 1 reproduction. The program exercises every construct the passes
// care about: symbolic constants (macro expansion), deep expression trees
// and multiple-value packages (parsing, graph conversion), nested and
// first-class functions (environment analysis), duplicate pure
// subexpressions, foldable constants and tiny callees (optimization), and
// conditionals plus iteration (lowering).
//
// The output is a valid program: the call graph is a DAG over function
// indices, so it also runs if executed (main calls a bounded cascade).
func Generate(nFuncs int, seed int64) string {
	if nFuncs < 4 {
		nFuncs = 4
	}
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder

	b.WriteString("-- synthetic compiler workload (generated)\n")
	b.WriteString("define K1 3\ndefine K2 7\ndefine LIMIT 5\ndefine BIAS add(K1, K2)\n\n")

	for i := 0; i < nFuncs; i++ {
		switch i % 4 {
		case 0:
			genTiny(&b, i, rng)
		case 1:
			genArith(&b, i, rng)
		case 2:
			genBranchy(&b, i, rng)
		default:
			genLoopy(&b, i, rng)
		}
	}

	// main exercises the most recent functions.
	fmt.Fprintf(&b, "main()\n  let r1 = %s\n      r2 = %s\n  in add(r1, r2)\n",
		callTo(nFuncs-1, "1", "2"), callTo(nFuncs-2, "3", "4"))
	return b.String()
}

func fname(i int) string { return fmt.Sprintf("f%d", i) }

// callTo builds a call to function i with arity matching its shape.
func callTo(i int, a, bb string) string {
	if i < 0 {
		return "incr(" + a + ")"
	}
	if i%4 == 0 {
		return fmt.Sprintf("%s(%s)", fname(i), a)
	}
	return fmt.Sprintf("%s(%s, %s)", fname(i), a, bb)
}

// genTiny emits an inline-expansion candidate.
func genTiny(b *strings.Builder, i int, rng *rand.Rand) {
	fmt.Fprintf(b, "%s(x) add(mul(x, K1), %d)\n\n", fname(i), rng.Intn(50))
}

// genArith emits a straight-line function with CSE and folding fodder.
func genArith(b *strings.Builder, i int, rng *rand.Rand) {
	c1, c2 := rng.Intn(9)+1, rng.Intn(9)+1
	callee := callTo(i-rng.Intn(min(i, 3)+1)-1, "a", "b")
	fmt.Fprintf(b, `%s(p, q)
  let a = add(mul(p, %d), BIAS)
      b = add(mul(p, %d), q)
      folded = mul(%d, %d)
      joined = %s
  in add(add(a, b), add(folded, joined))

`, fname(i), c1, c1, c1, c2, callee)
}

// genBranchy emits conditionals over multiple-value packages.
func genBranchy(b *strings.Builder, i int, rng *rand.Rand) {
	c := rng.Intn(20)
	fmt.Fprintf(b, `%s(p, q)
  let <lo, hi> = <min(p, q), max(p, q)>
      spread = sub(hi, lo)
  in if lt(spread, %d)
      then %s
      else add(spread, K2)

`, fname(i), c, callTo(i-1, "lo", "hi"))
}

// genLoopy emits iteration with a nested helper function.
func genLoopy(b *strings.Builder, i int, rng *rand.Rand) {
	step := rng.Intn(3) + 1
	fmt.Fprintf(b, `%s(p, q)
  let base = max(p, 1)
      stepf(v) add(v, mul(base, %d))
  in iterate
     {
       k = 0, incr(k)
       acc = q, stepf(acc)
     } while lt(k, LIMIT),
     result acc

`, fname(i), step)
}
