package compile

import (
	"strings"
	"testing"

	"repro/internal/runtime"
	"repro/internal/value"
)

// FuzzCompile feeds arbitrary text through the whole pipeline. The
// compiler must never panic: malformed input produces diagnostics, and
// well-formed input produces a validated program. Run the seeds as regular
// tests with `go test`, or fuzz with `go test -fuzz=FuzzCompile`.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"",
		"main() 1",
		"main() add(1, 2)",
		"main() let a = 1 in a",
		"main() let <a,b> = <1,2> in add(a,b)",
		"main() if is_equal(1,1) then 2 else 3",
		"main() iterate { i = 0, incr(i) } while lt(i, 3), result i",
		"define N 4\nmain() N",
		"f(x) f(x)\nmain() 0",
		"main() let g(v) incr(v) in g(1)",
		"main() <",
		"main() let in",
		"main() iterate {} while x, result y",
		"42 42 42",
		"main() \"unterminated",
		"define define define",
		"main() tuple_get(<1>, 9)",
		"a() b()\nb() a()\nmain() 1",
		"main() (((((((1)))))))",
		"main() merge(NULL, NULL, <NULL>)",
		"\xff\xfe invalid utf8 \x80",
		"main(" + strings.Repeat("x,", 50) + "y) y",
		"main() " + strings.Repeat("incr(", 100) + "1" + strings.Repeat(")", 100),
	}
	// Generator-derived corpus entries give the fuzzer structurally valid
	// programs to mutate from — much deeper pipeline coverage than
	// hand-written snippets alone.
	seeds = append(seeds,
		Generate(4, 1),
		Generate(8, 3),
		Generate(16, 99),
		Generate(32, -5),
	)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Compile("fuzz.dlr", src, Options{})
		if err != nil {
			return // diagnostics are the expected outcome for bad input
		}
		// Valid programs must also execute (or fail cleanly) without
		// panicking; cap the work so pathological loops terminate.
		if res.Program.Main == nil || res.Program.Main.NParams != 0 {
			return
		}
		eng := runtime.New(res.Program, runtime.Config{
			Mode: runtime.Real, Workers: 2, MaxOps: 50_000})
		v, err := eng.Run()
		if err == nil && v == nil {
			t.Fatal("nil result without error")
		}
	})
}

// FuzzGenerate asserts Generate's contract directly: at arbitrary
// (nFuncs, seed) — negative, zero, huge — the output always compiles
// cleanly. Compile-only, so the fuzzer can sweep function counts far
// beyond what the compile-and-run target affords.
func FuzzGenerate(f *testing.F) {
	f.Add(0, int64(0))
	f.Add(-3, int64(-1))
	f.Add(100, int64(7))
	f.Add(1 << 20, int64(42))
	f.Fuzz(func(t *testing.T, nFuncs int, seed int64) {
		// Bound only the work, not the input domain: fold huge requests
		// into a still-large range so fuzz iterations stay fast.
		n := nFuncs
		if n > 512 || n < -512 {
			n = int(int64(n)%512 + 512)
		}
		src := Generate(n, seed)
		if _, err := Compile("gen.dlr", src, Options{}); err != nil {
			t.Fatalf("Generate(%d, %d) does not compile: %v", n, seed, err)
		}
	})
}

// FuzzGeneratedPrograms verifies the synthetic workload generator always
// emits valid, runnable programs over its whole seed space slice.
func FuzzGeneratedPrograms(f *testing.F) {
	f.Add(int64(0), uint8(8))
	f.Add(int64(42), uint8(30))
	f.Add(int64(-7), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		src := Generate(int(n%64)+4, seed)
		res, err := Compile("gen.dlr", src, Options{})
		if err != nil {
			t.Fatalf("generated program failed to compile: %v\n%s", err, src)
		}
		eng := runtime.New(res.Program, runtime.Config{
			Mode: runtime.Real, Workers: 2, MaxOps: 5_000_000})
		v, err := eng.Run()
		if err != nil {
			t.Fatalf("generated program failed to run: %v", err)
		}
		if _, ok := v.(value.Int); !ok {
			if _, ok := v.(value.Float); !ok {
				t.Fatalf("generated main returned %T", v)
			}
		}
	})
}
