package compile

import (
	"strings"
	"testing"
)

// TestParallelDiagnosticsDeterministic checks that the parallel compiler
// reports the same diagnostics, in the same order, as the sequential one —
// per-worker diagnostic buffers are merged in definition order.
func TestParallelDiagnosticsDeterministic(t *testing.T) {
	// A program with an error in many functions.
	var b strings.Builder
	for i := 0; i < 12; i++ {
		b.WriteString("f")
		b.WriteByte(byte('a' + i))
		b.WriteString("(x) undefined_op(x)\n")
	}
	b.WriteString("main() 1\n")
	src := b.String()

	_, seqErr := Compile("t.dlr", src, Options{Workers: 1})
	if seqErr == nil {
		t.Fatal("expected errors")
	}
	for trial := 0; trial < 5; trial++ {
		_, parErr := Compile("t.dlr", src, Options{Workers: 4})
		if parErr == nil {
			t.Fatal("parallel compile missed the errors")
		}
		if parErr.Error() != seqErr.Error() {
			t.Fatalf("trial %d: diagnostics differ\n--- sequential\n%v\n--- parallel\n%v",
				trial, seqErr, parErr)
		}
	}
	// All twelve errors reported, not just the first.
	if got := strings.Count(seqErr.Error(), "undefined name"); got != 12 {
		t.Errorf("reported %d undefined-name errors, want 12", got)
	}
}

// TestParallelParseErrorsDeterministic does the same for syntax errors.
// Recovery messages may differ textually between the drivers — the chunk
// parser hits its chunk's end where the sequential parser sees the next
// definition — but the parallel driver must be deterministic across runs
// and must flag the same source lines as the sequential one.
func TestParallelParseErrorsDeterministic(t *testing.T) {
	src := `
alpha() let x = in 1
beta() if 1 then 2
gamma() (unclosed
main() 1
`
	_, seqErr := Compile("t.dlr", src, Options{Workers: 1})
	if seqErr == nil {
		t.Fatal("expected errors")
	}
	var first string
	for trial := 0; trial < 5; trial++ {
		_, parErr := Compile("t.dlr", src, Options{Workers: 3})
		if parErr == nil {
			t.Fatal("parallel compile missed the errors")
		}
		if first == "" {
			first = parErr.Error()
		} else if parErr.Error() != first {
			t.Fatalf("trial %d: parallel diagnostics unstable", trial)
		}
	}
	for _, line := range []string{"t.dlr:2:", "t.dlr:3:", "t.dlr:4:"} {
		if !strings.Contains(seqErr.Error(), line) {
			t.Errorf("sequential diagnostics missing %s", line)
		}
		if !strings.Contains(first, line) {
			t.Errorf("parallel diagnostics missing %s", line)
		}
	}
}
