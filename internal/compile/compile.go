// Package compile drives the Delirium compiler pipeline — the six passes of
// Table 1: lexing, parsing, macro expansion, environment analysis,
// optimization, and graph conversion — with per-pass timing.
//
// Two drivers share the passes. The sequential driver runs each pass over
// the whole program. The parallel driver reproduces case study #2 (§6): for
// each pass after lexing, a sequential crown step splits the program into
// per-function subtrees, a pool of workers processes the subtrees
// independently, and a merge step reassembles the result ("merging is
// implicit and involves no actual work other than returning the pointer").
// Lexing is inherently serial, which is why Table 1 shows it unchanged
// between the sequential and parallel compilers.
package compile

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/lexer"
	"repro/internal/macro"
	"repro/internal/operator"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sema"
	"repro/internal/source"
)

// Pass names, in pipeline order, exactly as Table 1 lists them.
var PassNames = []string{
	"Lexing", "Parsing", "Macro Expansion", "Env Analysis", "Optimization", "Graph Conversion",
}

// Options configures a compilation.
type Options struct {
	// Registry supplies the operators the program may call; nil selects
	// the builtin registry.
	Registry *operator.Registry
	// OptLevel: 0 none, 1 local optimizations, 2 adds inlining (default).
	OptLevel int
	// InlineBudget caps inline-candidate size (0 = optimizer default).
	InlineBudget int
	// Workers > 1 selects the parallel compiler with that many workers.
	Workers int
	// MemPlan runs the memory-plan pass (opt.PlanMemory) over the linked
	// graph: static ownership facts that let the runtime elide refcount
	// traffic, guarantee in-place destructive updates, and recycle block
	// payloads. Off by default; planned and unplanned programs produce
	// bit-identical results.
	MemPlan bool
	// Fuse runs the operator-fusion pass (opt.FuseGraph) over the linked
	// graph: single-consumer chains collapse into supernodes dispatched
	// once, and static bottom-level priorities order the ready queues. Off
	// by default; fused and unfused programs produce bit-identical results.
	Fuse bool
	// FuseProfile optionally seeds fusion's operator weights with mean
	// execution costs from a delprof run (operator name -> mean ticks/ns).
	// Missing entries fall back to unit weight.
	FuseProfile map[string]int64
	// Adaptive marks the compilation as part of the adaptive
	// calibrate→re-fuse→re-run loop (internal/adapt): it implies Fuse, since
	// the loop's whole point is feeding measured weights back into fusion
	// priorities. The loop itself lives outside the compiler — this flag
	// only keeps a caller from requesting adaptation without the pass that
	// consumes its measurements.
	Adaptive bool
	// Affinity runs the affinity-plan pass (opt.PlanAffinity) after fusion:
	// every node gets an advisory preferred-producer edge and a weight tier,
	// which the Real executor (under Config.AffinityHints) turns into
	// producer-preferred dispatch and batched, locality-ranked stealing, and
	// the Simulated executor into hint-driven placement. Implies Fuse, since
	// the tiers come from fusion's bottom levels (and composes with MemPlan,
	// whose ownership facts pick the block-carrying edges). Hints are
	// advisory-only: results are bit-identical with the pass on or off.
	Affinity bool
}

func (o Options) registry() *operator.Registry {
	if o.Registry != nil {
		return o.Registry
	}
	return operator.Builtins()
}

func (o Options) optLevel() int {
	if o.OptLevel == 0 {
		return 2
	}
	if o.OptLevel < 0 {
		return 0
	}
	return o.OptLevel
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// PassTime records one pass's wall-clock duration.
type PassTime struct {
	Name  string
	Nanos int64
}

// Result is a finished compilation.
type Result struct {
	// Program is the linked, validated coordination-graph program.
	Program *graph.Program
	// Info is the environment-analysis result (for tooling).
	Info *sema.Info
	// OptStats counts optimizer transformations.
	OptStats *opt.Stats
	// Passes lists per-pass wall times in pipeline order.
	Passes []PassTime
	// Warnings carries non-fatal diagnostics (e.g. unused parameters).
	Warnings []string
	// MemPlan is the memory-plan report, nil unless Options.MemPlan was set.
	MemPlan *opt.MemPlan
	// FusePlan is the operator-fusion report, nil unless Options.Fuse was set.
	FusePlan *opt.FusePlan
	// AffinityPlan is the affinity-hint report, nil unless Options.Affinity
	// was set.
	AffinityPlan *opt.AffinityPlan
}

// PassNanos returns the duration of the named pass (0 if absent).
func (r *Result) PassNanos(name string) int64 {
	for _, p := range r.Passes {
		if p.Name == name {
			return p.Nanos
		}
	}
	return 0
}

// TotalNanos sums every pass.
func (r *Result) TotalNanos() int64 {
	var total int64
	for _, p := range r.Passes {
		total += p.Nanos
	}
	return total
}

// Compile compiles one Delirium source file. With Options.Workers > 1 the
// parallel driver is used; the output is identical either way.
func Compile(file, src string, opts Options) (*Result, error) {
	if opts.Adaptive || opts.Affinity {
		opts.Fuse = true
	}
	if opts.workers() > 1 {
		return compileParallel(file, src, opts)
	}
	return compileSequential(file, src, opts)
}

// timePass runs fn, appending its duration to r.
func timePass(r *Result, name string, fn func()) {
	t0 := time.Now()
	fn()
	r.Passes = append(r.Passes, PassTime{Name: name, Nanos: int64(time.Since(t0))})
}

func compileSequential(file, src string, opts Options) (*Result, error) {
	reg := opts.registry()
	res := &Result{}
	var diags source.DiagList

	var toks []lexer.Token
	timePass(res, "Lexing", func() {
		toks = lexer.New(file, src, &diags).ScanAll()
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}

	var prog *ast.Program
	timePass(res, "Parsing", func() {
		prog = parser.ParseTokens(file, toks, &diags)
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}

	var expanded *ast.Program
	timePass(res, "Macro Expansion", func() {
		table := macro.BuildTable(prog.Defines, &diags)
		expanded = &ast.Program{File: prog.File}
		for _, f := range prog.Funcs {
			expanded.Funcs = append(expanded.Funcs, table.ExpandFunc(f, &diags))
		}
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}

	var info *sema.Info
	timePass(res, "Env Analysis", func() {
		info = sema.Analyze(expanded, reg, &diags)
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}
	res.Info = info

	timePass(res, "Optimization", func() {
		res.OptStats = opt.Optimize(info, opt.Options{Level: opts.optLevel(), InlineBudget: opts.InlineBudget})
	})

	var g *graph.Program
	timePass(res, "Graph Conversion", func() {
		g = graph.Build(info, &diags)
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}
	if opts.MemPlan {
		timePass(res, "Memory Plan", func() {
			res.MemPlan = opt.PlanMemory(g)
		})
	}
	if opts.Fuse {
		timePass(res, "Fusion", func() {
			res.FusePlan = opt.FuseGraph(g, opts.FuseProfile)
		})
	}
	if opts.Affinity {
		timePass(res, "Affinity Plan", func() {
			res.AffinityPlan = opt.PlanAffinity(g)
		})
	}
	res.Program = g
	res.Warnings = collectWarnings(&diags)
	appendFuseWarnings(res)
	return res, nil
}

// appendFuseWarnings surfaces fusion-plan diagnostics — profile keys that
// matched no operator — as ordinary compile warnings, so a stale or
// mistargeted profile is visible wherever warnings are printed.
func appendFuseWarnings(res *Result) {
	if res.FusePlan == nil {
		return
	}
	if keys := res.FusePlan.UnmatchedProfileKeys; len(keys) > 0 {
		res.Warnings = append(res.Warnings, fmt.Sprintf(
			"fusion profile: %d key(s) matched no operator (unmatched operators use unit weight): %s",
			len(keys), strings.Join(keys, ", ")))
	}
}

// collectWarnings extracts warning-severity diagnostics as rendered lines.
func collectWarnings(diags *source.DiagList) []string {
	var out []string
	for _, d := range diags.Diags() {
		if d.Severity == source.Warning {
			out = append(out, d.Error())
		}
	}
	return out
}

// parallelFor runs fn(i) for i in [0, n) on the given number of workers.
// Each invocation gets its own index so outputs merge deterministically.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// mergeDiags folds per-worker diagnostic lists into diags in index order,
// restoring the sequential compiler's deterministic message order.
func mergeDiags(diags *source.DiagList, parts []source.DiagList) {
	for i := range parts {
		diags.Merge(&parts[i])
	}
}

func compileParallel(file, src string, opts Options) (*Result, error) {
	reg := opts.registry()
	workers := opts.workers()
	res := &Result{}
	var diags source.DiagList

	// Lexing: inherently sequential (Table 1: unchanged at n=3).
	var toks []lexer.Token
	timePass(res, "Lexing", func() {
		toks = lexer.New(file, src, &diags).ScanAll()
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}

	// Parsing: crown split at top-level boundaries, chunks parsed
	// independently, merged in order.
	var prog *ast.Program
	timePass(res, "Parsing", func() {
		chunks := parser.SplitTopLevel(toks)
		parts := make([]*ast.Program, len(chunks))
		partDiags := make([]source.DiagList, len(chunks))
		parallelFor(len(chunks), workers, func(i int) {
			parts[i] = parser.ParseChunk(file, chunks[i], &partDiags[i])
		})
		mergeDiags(&diags, partDiags)
		prog = &ast.Program{File: file}
		for _, p := range parts {
			prog.Defines = append(prog.Defines, p.Defines...)
			prog.Funcs = append(prog.Funcs, p.Funcs...)
		}
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}

	// Macro expansion: a top-down update walk — the table is the crown,
	// each function body expands independently.
	var expanded *ast.Program
	timePass(res, "Macro Expansion", func() {
		table := macro.BuildTable(prog.Defines, &diags)
		outs := make([]*ast.FuncDecl, len(prog.Funcs))
		partDiags := make([]source.DiagList, len(prog.Funcs))
		parallelFor(len(prog.Funcs), workers, func(i int) {
			outs[i] = table.ExpandFunc(prog.Funcs[i], &partDiags[i])
		})
		mergeDiags(&diags, partDiags)
		expanded = &ast.Program{File: prog.File, Funcs: outs}
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}

	// Environment analysis: an inherited-attribute walk — the global
	// environment is the crown, each function resolves independently.
	var info *sema.Info
	timePass(res, "Env Analysis", func() {
		crown := sema.Collect(expanded, reg, &diags)
		var decls []*ast.FuncDecl
		seen := make(map[string]bool)
		for _, f := range crown.Prog.Funcs {
			if !seen[f.Name] {
				seen[f.Name] = true
				decls = append(decls, f)
			}
		}
		units := make([]*sema.FuncUnit, len(decls))
		partDiags := make([]source.DiagList, len(decls))
		parallelFor(len(decls), workers, func(i int) {
			units[i] = sema.AnalyzeOne(crown, decls[i], &partDiags[i])
		})
		mergeDiags(&diags, partDiags)
		info = sema.Finalize(crown, units, &diags)
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}
	res.Info = info

	// Optimization: a synthesized-attribute walk per function; inlining
	// reads a frozen snapshot between the two local phases.
	timePass(res, "Optimization", func() {
		st := &opt.Stats{}
		oopts := opt.Options{Level: opts.optLevel(), InlineBudget: opts.InlineBudget}
		if oopts.Level > 0 {
			parallelFor(len(info.Order), workers, func(i int) {
				opt.OptimizeFunc(info, info.Funcs[info.Order[i]].Decl, oopts, st)
			})
			if oopts.Level >= 2 {
				snap := opt.Snapshot(info)
				parallelFor(len(info.Order), workers, func(i int) {
					f := info.Funcs[info.Order[i]].Decl
					opt.InlineFunc(info, f, snap, oopts, st)
					opt.OptimizeFunc(info, f, oopts, st)
				})
			}
		}
		res.OptStats = st
	})

	// Graph conversion: one template set per function, merged and linked.
	var g *graph.Program
	timePass(res, "Graph Conversion", func() {
		sets := make([][]*graph.Template, len(info.Order))
		partDiags := make([]source.DiagList, len(info.Order))
		parallelFor(len(info.Order), workers, func(i int) {
			sets[i] = graph.BuildFunc(info, info.Funcs[info.Order[i]].Decl, &partDiags[i])
		})
		mergeDiags(&diags, partDiags)
		g = &graph.Program{Templates: make(map[string]*graph.Template), Registry: reg}
		for _, set := range sets {
			for _, tmpl := range set {
				g.Templates[tmpl.Name] = tmpl
			}
		}
		graph.Link(g, &diags)
	})
	if err := diags.Err(); err != nil {
		return nil, err
	}
	if opts.MemPlan {
		// The plan is a whole-program fixpoint over the linked graph, so it
		// stays sequential even in the parallel driver.
		timePass(res, "Memory Plan", func() {
			res.MemPlan = opt.PlanMemory(g)
		})
	}
	if opts.Fuse {
		// Fusion walks the whole call graph for bottom levels, so it too
		// stays sequential in the parallel driver.
		timePass(res, "Fusion", func() {
			res.FusePlan = opt.FuseGraph(g, opts.FuseProfile)
		})
	}
	if opts.Affinity {
		timePass(res, "Affinity Plan", func() {
			res.AffinityPlan = opt.PlanAffinity(g)
		})
	}
	res.Program = g
	res.Warnings = collectWarnings(&diags)
	appendFuseWarnings(res)
	return res, nil
}

// Table renders the pass times of a sequential and a parallel compilation
// side by side in the format of Table 1.
func Table(seq, par *Result, workers int) string {
	out := fmt.Sprintf("%-18s %12s %16s\n", "Pass", "Sequential", fmt.Sprintf("Parallel (n=%d)", workers))
	for _, name := range PassNames {
		out += fmt.Sprintf("%-18s %9.1f ms %13.1f ms\n", name,
			float64(seq.PassNanos(name))/1e6, float64(par.PassNanos(name))/1e6)
	}
	out += fmt.Sprintf("%-18s %9.1f ms %13.1f ms\n", "Totals",
		float64(seq.TotalNanos())/1e6, float64(par.TotalNanos())/1e6)
	return out
}
