package compile

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/graph"
	"repro/internal/parser"
	"repro/internal/runtime"
	"repro/internal/source"
	"repro/internal/value"
)

const smallSrc = `
define N 4

square(v) mul(v, v)

main()
  let a = square(N)
      b = square(incr(N))
  in add(a, b)
`

func TestCompileSequential(t *testing.T) {
	res, err := Compile("t.dlr", smallSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program == nil || res.Program.Main == nil {
		t.Fatal("no program")
	}
	if len(res.Passes) != len(PassNames) {
		t.Fatalf("passes = %d, want %d", len(res.Passes), len(PassNames))
	}
	for i, p := range res.Passes {
		if p.Name != PassNames[i] {
			t.Errorf("pass[%d] = %q, want %q", i, p.Name, PassNames[i])
		}
		if p.Nanos < 0 {
			t.Errorf("pass %q has negative duration", p.Name)
		}
	}
	if res.TotalNanos() <= 0 {
		t.Error("TotalNanos should be positive")
	}
}

func TestCompileAndRun(t *testing.T) {
	res, err := Compile("t.dlr", smallSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := runtime.New(res.Program, runtime.Config{Mode: runtime.Real, Workers: 2})
	v, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != value.Int(41) { // 16 + 25
		t.Errorf("result = %v, want 41", v)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main() @", "unexpected character"},
		{"main() let in x", "no bindings"},
		{"main() nope(1)", "undefined name"},
	}
	for _, c := range cases {
		if _, err := Compile("t.dlr", c.src, Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) err = %v, want mention of %q", c.src, err, c.want)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	src := Generate(40, 7)
	seq, err := Compile("g.dlr", src, Options{Workers: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Compile("g.dlr", src, Options{Workers: 4})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	// Same template names and per-template shapes.
	if len(seq.Program.Templates) != len(par.Program.Templates) {
		t.Fatalf("template counts differ: %d vs %d",
			len(seq.Program.Templates), len(par.Program.Templates))
	}
	var names []string
	for name := range seq.Program.Templates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := seq.Program.Templates[name]
		pt, ok := par.Program.Templates[name]
		if !ok {
			t.Fatalf("template %s missing from parallel compile", name)
		}
		if len(pt.Nodes) != len(st.Nodes) || pt.Result != st.Result ||
			pt.NParams != st.NParams || pt.NCaptures != st.NCaptures || pt.Recursive != st.Recursive {
			t.Errorf("template %s differs between drivers", name)
		}
	}
}

func TestParallelAndSequentialProduceSameResult(t *testing.T) {
	src := Generate(24, 11)
	var results []value.Value
	for _, workers := range []int{1, 3} {
		res, err := Compile("g.dlr", src, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		e := runtime.New(res.Program, runtime.Config{Mode: runtime.Real, Workers: 2, MaxOps: 5_000_000})
		v, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, v)
	}
	if !value.Equal(results[0], results[1]) {
		t.Errorf("compiled programs disagree: %v vs %v", results[0], results[1])
	}
}

func TestOptimizationLevelsPreserveSemantics(t *testing.T) {
	src := Generate(16, 3)
	var results []value.Value
	for _, lvl := range []int{-1, 1, 2} {
		res, err := Compile("g.dlr", src, Options{OptLevel: lvl})
		if err != nil {
			t.Fatalf("level %d: %v", lvl, err)
		}
		e := runtime.New(res.Program, runtime.Config{Mode: runtime.Real, Workers: 2, MaxOps: 5_000_000})
		v, err := e.Run()
		if err != nil {
			t.Fatalf("level %d: %v", lvl, err)
		}
		results = append(results, v)
	}
	for i := 1; i < len(results); i++ {
		if !value.Equal(results[0], results[i]) {
			t.Errorf("optimization changed semantics: %v vs %v", results[0], results[i])
		}
	}
}

func TestOptimizationShrinksGraphs(t *testing.T) {
	src := Generate(32, 5)
	unopt, err := Compile("g.dlr", src, Options{OptLevel: -1})
	if err != nil {
		t.Fatal(err)
	}
	opt2, err := Compile("g.dlr", src, Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if opt2.Program.NodeCount() >= unopt.Program.NodeCount() {
		t.Errorf("optimized graph not smaller: %d vs %d nodes",
			opt2.Program.NodeCount(), unopt.Program.NodeCount())
	}
	if opt2.OptStats.Folded == 0 || opt2.OptStats.Inlined == 0 {
		t.Errorf("optimizer idle on synthetic workload: %v", opt2.OptStats)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(20, 42)
	b := Generate(20, 42)
	if a != b {
		t.Error("Generate must be deterministic for a fixed seed")
	}
	c := Generate(20, 43)
	if a == c {
		t.Error("different seeds should vary the program")
	}
}

func TestGenerateScales(t *testing.T) {
	small := Generate(10, 1)
	big := Generate(200, 1)
	if len(big) < 5*len(small) {
		t.Errorf("Generate(200) should be much larger than Generate(10): %d vs %d", len(big), len(small))
	}
}

func TestTableRendering(t *testing.T) {
	src := Generate(12, 2)
	seq, err := Compile("g.dlr", src, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compile("g.dlr", src, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	tab := Table(seq, par, 3)
	for _, name := range PassNames {
		if !strings.Contains(tab, name) {
			t.Errorf("table missing pass %q:\n%s", name, tab)
		}
	}
	if !strings.Contains(tab, "Totals") {
		t.Error("table missing totals row")
	}
}

func TestDotExportOfCompiledProgram(t *testing.T) {
	res, err := Compile("t.dlr", smallSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dot := res.Program.Dot(); !strings.Contains(dot, "main") {
		t.Error("dot export missing main")
	}
	if _, ok := res.Program.Template("main"); !ok {
		t.Error("Template lookup failed")
	}
	var tmpl *graph.Template
	tmpl, _ = res.Program.Template("main")
	if tmpl.CountNodes() == 0 {
		t.Error("main has no nodes")
	}
}

func TestGeneratedProgramsPrintParseFixpoint(t *testing.T) {
	// Property: for generated workloads, print -> parse -> print is a
	// fixed point (the printer emits re-parseable canonical source).
	for seed := int64(0); seed < 5; seed++ {
		src := Generate(20, seed)
		var diags source.DiagList
		prog1 := parser.Parse("g.dlr", src, &diags)
		if diags.HasErrors() {
			t.Fatalf("seed %d: %v", seed, diags.Err())
		}
		p1 := ast.PrintProgram(prog1)
		prog2 := parser.Parse("g2.dlr", p1, &diags)
		if diags.HasErrors() {
			t.Fatalf("seed %d: printed source does not re-parse: %v", seed, diags.Err())
		}
		if p2 := ast.PrintProgram(prog2); p1 != p2 {
			t.Errorf("seed %d: print/parse not a fixed point", seed)
		}
	}
}

func TestUnusedParameterWarning(t *testing.T) {
	res, err := Compile("t.dlr", "f(a, b) incr(a)\nmain() f(1, 2)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 || !strings.Contains(res.Warnings[0], "parameter b of f is never used") {
		t.Errorf("Warnings = %v", res.Warnings)
	}
	// Clean programs warn nothing; captures and forwarded names count as
	// uses.
	clean, err := Compile("t.dlr", `
main(k)
  let addk(v) add(v, k)
  in addk(k)
`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", clean.Warnings)
	}
	// The parallel driver reports the same warnings.
	par, err := Compile("t.dlr", "f(a, b) incr(a)\nmain() f(1, 2)", Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Warnings) != 1 {
		t.Errorf("parallel Warnings = %v", par.Warnings)
	}
}
