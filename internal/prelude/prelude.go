// Package prelude is a small standard library written in Delirium itself,
// addressing the critique of §9.2: "the number of pieces into which a data
// structure is divided is chosen explicitly by the Delirium programmer.
// This is an awkward way to describe high degrees of parallelism." The
// paper says the authors "addressed this problem by generalizing the
// language with a notation that encompasses more complex coordination"
// (citing their coordination-structures work); here the same effect falls
// out of the existing language: first-class functions plus divide-and-
// conquer recursion express dynamic-width parallelism with no new syntax.
//
//   - iota(n)            the package <1, 2, ..., n>
//   - parmap(f, t)       applies f to every element of t; all applications
//     run in parallel (a balanced binary recursion tree)
//   - parreduce(f, z, t) combines t's elements with the associative f,
//     again as a balanced tree, so an n-element
//     reduction has O(log n) critical path
//   - partabulate(f, n)  the package <f(1), ..., f(n)> without
//     materializing iota first
//   - parfilter(p, t)    the elements of t for which the predicate p
//     holds, with every test run in parallel
//
// Prepend Source() to a program (the prelude is ordinary Delirium, so it
// costs nothing unless called).
package prelude

// Source returns the prelude's Delirium source text.
func Source() string { return src }

// FunctionNames lists the names the prelude defines, so front ends can
// detect collisions early.
func FunctionNames() []string {
	return []string{
		"iota", "iota_range",
		"parmap", "parmap_range",
		"parreduce", "parreduce_range",
		"partabulate", "partabulate_range",
		"parfilter", "parfilter_range",
	}
}

const src = `-- Delirium prelude: dynamic-width coordination structures (see §9.2).

iota(n)
  iota_range(1, n)

iota_range(lo, hi)
  if gt(lo, hi)
    then <>
    else if is_equal(lo, hi)
      then <lo>
      else let mid = div(add(lo, hi), 2)
               left = iota_range(lo, mid)
               right = iota_range(incr(mid), hi)
           in tuple_concat(left, right)

parmap(f, t)
  parmap_range(f, t, 1, tuple_len(t))

parmap_range(f, t, lo, hi)
  if gt(lo, hi)
    then <>
    else if is_equal(lo, hi)
      then <f(tuple_get(t, lo))>
      else let mid = div(add(lo, hi), 2)
               left = parmap_range(f, t, lo, mid)
               right = parmap_range(f, t, incr(mid), hi)
           in tuple_concat(left, right)

parreduce(f, z, t)
  parreduce_range(f, z, t, 1, tuple_len(t))

parreduce_range(f, z, t, lo, hi)
  if gt(lo, hi)
    then z
    else if is_equal(lo, hi)
      then tuple_get(t, lo)
      else let mid = div(add(lo, hi), 2)
               left = parreduce_range(f, z, t, lo, mid)
               right = parreduce_range(f, z, t, incr(mid), hi)
           in f(left, right)

partabulate(f, n)
  partabulate_range(f, 1, n)

partabulate_range(f, lo, hi)
  if gt(lo, hi)
    then <>
    else if is_equal(lo, hi)
      then <f(lo)>
      else let mid = div(add(lo, hi), 2)
               left = partabulate_range(f, lo, mid)
               right = partabulate_range(f, incr(mid), hi)
           in tuple_concat(left, right)

parfilter(p, t)
  parfilter_range(p, t, 1, tuple_len(t))

parfilter_range(p, t, lo, hi)
  if gt(lo, hi)
    then <>
    else if is_equal(lo, hi)
      then let x = tuple_get(t, lo)
           in if p(x) then <x> else <>
      else let mid = div(add(lo, hi), 2)
               left = parfilter_range(p, t, lo, mid)
               right = parfilter_range(p, t, incr(mid), hi)
           in tuple_concat(left, right)
`
