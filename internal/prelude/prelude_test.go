package prelude

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/machine"
	"repro/internal/operator"
	"repro/internal/runtime"
	"repro/internal/value"
)

// run compiles prelude+src and executes it.
func run(t *testing.T, src string, reg *operator.Registry, cfg runtime.Config, args ...value.Value) (value.Value, *runtime.Engine) {
	t.Helper()
	if reg == nil {
		reg = operator.Builtins()
	}
	res, err := compile.Compile("prelude-test.dlr", Source()+src, compile.Options{Registry: reg})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	eng := runtime.New(res.Program, cfg)
	v, err := eng.Run(args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, eng
}

func realCfg() runtime.Config {
	return runtime.Config{Mode: runtime.Real, Workers: 4, MaxOps: 10_000_000}
}

func TestPreludeCompilesAlone(t *testing.T) {
	res, err := compile.Compile("prelude.dlr", Source()+"\nmain() 1\n", compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range FunctionNames() {
		if _, ok := res.Program.Template(name); !ok {
			t.Errorf("prelude function %s missing from compiled program", name)
		}
	}
}

func TestIota(t *testing.T) {
	v, _ := run(t, "main(n) iota(n)", nil, realCfg(), value.Int(6))
	tup, ok := v.(value.Tuple)
	if !ok || len(tup) != 6 {
		t.Fatalf("iota(6) = %v", v)
	}
	for i, el := range tup {
		if el != value.Int(i+1) {
			t.Errorf("iota[%d] = %v", i, el)
		}
	}
	empty, _ := run(t, "main() iota(0)", nil, realCfg())
	if et, ok := empty.(value.Tuple); !ok || len(et) != 0 {
		t.Errorf("iota(0) = %v, want empty package", empty)
	}
}

func TestParmap(t *testing.T) {
	src := `
square(x) mul(x, x)
main(n) parmap(square, iota(n))
`
	v, _ := run(t, src, nil, realCfg(), value.Int(8))
	tup := v.(value.Tuple)
	if len(tup) != 8 {
		t.Fatalf("parmap produced %d elements", len(tup))
	}
	for i, el := range tup {
		want := value.Int((i + 1) * (i + 1))
		if el != want {
			t.Errorf("parmap[%d] = %v, want %v (order must be preserved)", i, el, want)
		}
	}
}

func TestParreduce(t *testing.T) {
	src := `
plus(a, b) add(a, b)
main(n) parreduce(plus, 0, iota(n))
`
	v, _ := run(t, src, nil, realCfg(), value.Int(100))
	if v != value.Int(5050) {
		t.Errorf("sum 1..100 = %v, want 5050", v)
	}
	empty, _ := run(t, "plus(a,b) add(a,b)\nmain() parreduce(plus, 42, <>)", nil, realCfg())
	if empty != value.Int(42) {
		t.Errorf("reduce of empty package = %v, want identity 42", empty)
	}
}

func TestPartabulate(t *testing.T) {
	src := `
cube(x) mul(x, mul(x, x))
main(n) partabulate(cube, n)
`
	v, _ := run(t, src, nil, realCfg(), value.Int(5))
	tup := v.(value.Tuple)
	want := []int64{1, 8, 27, 64, 125}
	for i, w := range want {
		if tup[i] != value.Int(w) {
			t.Errorf("partabulate[%d] = %v, want %d", i, tup[i], w)
		}
	}
}

func TestMapReducePipeline(t *testing.T) {
	// Sum of squares 1..n, entirely through the dynamic-width structures.
	src := `
square(x) mul(x, x)
plus(a, b) add(a, b)
main(n) parreduce(plus, 0, parmap(square, iota(n)))
`
	v, _ := run(t, src, nil, realCfg(), value.Int(20))
	if v != value.Int(2870) {
		t.Errorf("sum of squares 1..20 = %v, want 2870", v)
	}
}

func TestDynamicWidthActuallyParallel(t *testing.T) {
	// The §9.2 point: the SAME program exploits however many processors
	// exist — no hard-wired four-way split. A heavy operator mapped over
	// 16 elements must show near-linear simulated speedup from 1 to 8.
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{
		Name: "heavy", Arity: 1, Pure: false,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			ctx.Charge(100000)
			return args[0], nil
		},
	})
	src := `
hop(x) heavy(x)
main(n) parmap(hop, iota(n))
`
	makespan := func(procs int) int64 {
		res, err := compile.Compile("dyn.dlr", Source()+src, compile.Options{Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		eng := runtime.New(res.Program, runtime.Config{
			Mode: runtime.Simulated, Workers: procs,
			Machine: machine.CrayYMP().WithProcs(procs), MaxOps: 10_000_000})
		if _, err := eng.Run(value.Int(16)); err != nil {
			t.Fatal(err)
		}
		return eng.Stats().MakespanTicks
	}
	t1 := makespan(1)
	for _, procs := range []int{2, 4, 8} {
		sp := float64(t1) / float64(makespan(procs))
		if sp < 0.85*float64(procs) {
			t.Errorf("speedup(%d) = %.2f, want near-linear", procs, sp)
		}
	}
}

func TestParreduceLogCriticalPath(t *testing.T) {
	// The balanced reduction tree gives an O(log n) critical path: with
	// unbounded processors the makespan grows far slower than n.
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{
		Name: "slowplus", Arity: 2, Pure: false,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			ctx.Charge(10000)
			a := args[0].(value.Int)
			b := args[1].(value.Int)
			return a + b, nil
		},
	})
	src := `
sp(a, b) slowplus(a, b)
main(n) parreduce(sp, 0, iota(n))
`
	makespan := func(n int) int64 {
		res, err := compile.Compile("red.dlr", Source()+src, compile.Options{Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		eng := runtime.New(res.Program, runtime.Config{
			Mode: runtime.Simulated, Workers: 64,
			Machine: machine.CrayYMP().WithProcs(64), MaxOps: 50_000_000})
		v, err := eng.Run(value.Int(n))
		if err != nil {
			t.Fatal(err)
		}
		if v != value.Int(n*(n+1)/2) {
			t.Fatalf("reduce(%d) = %v", n, v)
		}
		return eng.Stats().MakespanTicks
	}
	t8, t64 := makespan(8), makespan(64)
	// 8x the elements, log-depth reduction: critical path grows by ~2x
	// (3 levels -> 6 levels), far below 8x.
	ratio := float64(t64) / float64(t8)
	if ratio > 4 {
		t.Errorf("makespan ratio 64/8 elements = %.2f, want ~2 (log critical path)", ratio)
	}
}

func TestPreludeDeterministicAcrossWorkers(t *testing.T) {
	src := `
square(x) mul(x, x)
plus(a, b) add(a, b)
main(n) parreduce(plus, 0, parmap(square, iota(n)))
`
	var want value.Value
	for _, workers := range []int{1, 3, 8} {
		v, _ := run(t, src, nil, runtime.Config{Mode: runtime.Real, Workers: workers, MaxOps: 10_000_000}, value.Int(30))
		if want == nil {
			want = v
		} else if !value.Equal(v, want) {
			t.Fatalf("workers=%d: %v != %v", workers, v, want)
		}
	}
}

func TestPreludeNameCollisionDetected(t *testing.T) {
	src := Source() + "\nparmap(a, b) a\nmain() 1\n"
	_, err := compile.Compile("clash.dlr", src, compile.Options{})
	if err == nil || !strings.Contains(err.Error(), "redefined") {
		t.Errorf("err = %v, want redefinition diagnostic", err)
	}
}

func TestTupleConcatBuiltin(t *testing.T) {
	v, _ := run(t, "main() tuple_concat(<1, 2>, <>, <3>)", nil, realCfg())
	tup := v.(value.Tuple)
	if fmt.Sprint(tup) != "<1, 2, 3>" {
		t.Errorf("tuple_concat = %v", tup)
	}
	res, err := compile.Compile("bad.dlr", "main() tuple_concat(1)", compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := runtime.New(res.Program, realCfg())
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "want tuple") {
		t.Errorf("err = %v", err)
	}
}

func TestParfilter(t *testing.T) {
	src := `
even(x) is_equal(mod(x, 2), 0)
main(n) parfilter(even, iota(n))
`
	v, _ := run(t, src, nil, realCfg(), value.Int(10))
	tup := v.(value.Tuple)
	want := []int64{2, 4, 6, 8, 10}
	if len(tup) != len(want) {
		t.Fatalf("parfilter = %v", tup)
	}
	for i, w := range want {
		if tup[i] != value.Int(w) {
			t.Errorf("parfilter[%d] = %v, want %d (order preserved)", i, tup[i], w)
		}
	}
	none, _ := run(t, "odd(x) is_equal(mod(x,2),1)\nmain() parfilter(odd, <2, 4, 6>)", nil, realCfg())
	if nt := none.(value.Tuple); len(nt) != 0 {
		t.Errorf("parfilter with no matches = %v", none)
	}
}

func TestParfilterComposesWithMapReduce(t *testing.T) {
	// Sum of squares of the even numbers 1..20.
	src := `
even(x) is_equal(mod(x, 2), 0)
square(x) mul(x, x)
plus(a, b) add(a, b)
main(n) parreduce(plus, 0, parmap(square, parfilter(even, iota(n))))
`
	v, _ := run(t, src, nil, realCfg(), value.Int(20))
	if v != value.Int(4+16+36+64+100+144+196+256+324+400) {
		t.Errorf("got %v", v)
	}
}
