package delirium_test

import (
	"fmt"
	"log"

	delirium "repro"
)

// Example compiles the paper's §2.1 fork/join fragment and runs it on four
// workers; the four convolve operators execute in parallel between init_fn
// and term_fn.
func Example() {
	reg := delirium.NewRegistry(delirium.Builtins())
	reg.MustRegister(&delirium.Operator{
		Name: "init_fn", Arity: 0,
		Fn: func(ctx delirium.Context, _ []delirium.Value) (delirium.Value, error) {
			return delirium.Int(100), nil
		},
	})
	reg.MustRegister(&delirium.Operator{
		Name: "convolve", Arity: 2,
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			return args[0].(delirium.Int) + args[1].(delirium.Int), nil
		},
	})
	reg.MustRegister(&delirium.Operator{
		Name: "term_fn", Arity: 4,
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			var sum delirium.Int
			for _, a := range args {
				sum += a.(delirium.Int)
			}
			return sum, nil
		},
	})

	src := `
main()
  let
    a_start=init_fn()
    a=convolve(a_start,0)
    b=convolve(a_start,1)
    c=convolve(a_start,2)
    d=convolve(a_start,3)
  in term_fn(a,b,c,d)
`
	prog, err := delirium.Compile("forkjoin.dlr", src, delirium.CompileOptions{Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	out, err := prog.Run(delirium.RunConfig{Mode: delirium.Real, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output: 406
}

// ExampleProgram_Run shows deterministic execution on the simulated
// Cray Y-MP: virtual time and the result are identical on every host.
func ExampleProgram_Run() {
	src := `
fib(n) if lt(n, 2) then n else add(fib(sub(n, 1)), fib(sub(n, 2)))
main(n) fib(n)
`
	prog, err := delirium.Compile("fib.dlr", src, delirium.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	v, stats, _, err := prog.RunStats(delirium.RunConfig{
		Mode: delirium.Simulated, Workers: 4, Machine: delirium.CrayYMP(),
	}, delirium.Int(12))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, stats.MakespanTicks > 0)
	// Output: 144 true
}

// ExamplePrelude maps and reduces with the dynamic-width coordination
// structures: the parallel width follows the data, not the program text.
func ExamplePrelude() {
	src := `
square(x) mul(x, x)
plus(a, b) add(a, b)
main(n) parreduce(plus, 0, parmap(square, iota(n)))
`
	prog, err := delirium.Compile("sumsq.dlr", delirium.Prelude()+src, delirium.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	out, err := prog.Run(delirium.RunConfig{Mode: delirium.Real, Workers: 4}, delirium.Int(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output: 385
}
