// Package delirium is a Go implementation of Delirium, the embedding
// coordination language of Lucco and Sharp (Supercomputing 1990).
//
// A parallel program is written as a compact Delirium coordination
// framework — a single-assignment functional notation with six constructs —
// into which sequential sub-computations called operators are embedded.
// Operators are ordinary Go functions registered by name; the only extra
// requirement is that an operator declares which of its arguments it might
// destructively modify. The run-time system enforces determinism with
// reference-counted shared memory blocks: a block is mutated in place only
// when the operator holds the sole reference, and copied otherwise.
//
// Programs compile to coordination graphs (templates) and execute on
// either a pool of worker goroutines (Real mode) or a deterministic
// simulated multiprocessor with a virtual clock and configurable machine
// profile (Simulated mode), including the three-level priority ready queue
// and tail-call activation reuse of the paper's run-time system.
//
// A minimal session:
//
//	reg := delirium.NewRegistry(delirium.Builtins())
//	reg.MustRegister(&delirium.Operator{
//	    Name: "convolve", Arity: 2,
//	    Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
//	        ...
//	    },
//	})
//	prog, err := delirium.Compile("conv.dlr", src, delirium.CompileOptions{Registry: reg})
//	out, err := prog.Run(delirium.RunConfig{Workers: 4})
package delirium

import (
	"context"

	"repro/internal/compile"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/operator"
	"repro/internal/opt"
	"repro/internal/prelude"
	"repro/internal/runtime"
	"repro/internal/value"
)

// Prelude returns a small standard library written in Delirium itself:
// iota, parmap, parreduce, parfilter, and partabulate — dynamic-width coordination
// structures built from first-class functions and divide-and-conquer
// recursion (the answer to the paper's §9.2 "parallelism is hard-wired"
// critique). Prepend it to a program's source before Compile.
func Prelude() string { return prelude.Source() }

// Re-exported value types: the data exchanged between operators.
type (
	// Value is any Delirium runtime value.
	Value = value.Value
	// Int, Float, Str, Bool, and Null are the atomic values.
	Int   = value.Int
	Float = value.Float
	Str   = value.Str
	Bool  = value.Bool
	Null  = value.Null
	// Tuple is a multiple-value package.
	Tuple = value.Tuple
	// Block is a reference-counted shared memory block.
	Block = value.Block
	// BlockData is a block's payload contract.
	BlockData = value.BlockData
	// Opaque adapts application payloads to BlockData.
	Opaque = value.Opaque
	// FloatGrid is a dense 2-D float payload.
	FloatGrid = value.FloatGrid
	// BlockStats aggregates reference-count traffic.
	BlockStats = value.BlockStats
)

// Re-exported operator types: the embedding side.
type (
	// Operator is a registered sequential sub-computation.
	Operator = operator.Operator
	// Registry maps operator names to implementations.
	Registry = operator.Registry
	// Context gives executing operators access to run-time services.
	Context = operator.Context
)

// Variadic marks an operator accepting any number of arguments.
const Variadic = operator.Variadic

// NewBlock wraps data in a fresh exclusive block.
func NewBlock(data BlockData) *Block { return value.NewBlock(data) }

// Builtins returns a registry preloaded with the standard operators
// (arithmetic, comparison, logic, tuples, merge).
func Builtins() *Registry { return operator.Builtins() }

// NewRegistry returns an empty registry chained to parent (nil for none).
func NewRegistry(parent *Registry) *Registry { return operator.NewRegistry(parent) }

// Re-exported execution types.
type (
	// Engine executes one compiled program. An engine is reusable: Reset
	// returns a finished engine to runnable without discarding its warmed
	// activation pools, block free lists, or scheduler, and RunMany batches
	// invocations through one engine with persistent workers.
	Engine = runtime.Engine
	// RunResult is one invocation's outcome in a RunMany batch.
	RunResult = runtime.RunResult
	// RunConfig configures an execution (workers, mode, machine profile,
	// timing, affinity, priority ablation).
	RunConfig = runtime.Config
	// Stats aggregates execution counters.
	Stats = runtime.Stats
	// TimingLog is the node timing tool's output.
	TimingLog = runtime.TimingLog
	// Trace is the structured execution trace recorded when
	// RunConfig.Trace is set; export it with WriteChrome or analyze it
	// with CriticalPath.
	Trace = runtime.Trace
	// TraceEvent is one recorded trace event.
	TraceEvent = runtime.TraceEvent
	// CritPath is the critical-path analysis of a Trace: the longest
	// weighted dependency chain, per-operator slack, and the imbalance
	// verdict.
	CritPath = runtime.CritPath
	// CritOp aggregates one operator's relation to the critical path.
	CritOp = runtime.CritOp
	// CritStep is one node execution on the critical path.
	CritStep = runtime.CritStep
	// MachineProfile describes a simulated machine.
	MachineProfile = machine.Profile
	// AffinityPolicy selects the simulated scheduler's §9.3 policy.
	AffinityPolicy = runtime.AffinityPolicy
	// RunError is the structured error a failed run returns: failure kind,
	// failed operator, activation path, attempt count, and captured panic
	// stack. Unwrap with errors.As, or errors.Is against context.Canceled.
	RunError = runtime.RunError
	// FailKind classifies a RunError.
	FailKind = runtime.FailKind
	// RetryPolicy configures deterministic operator retry
	// (RunConfig.Retry).
	RetryPolicy = runtime.RetryPolicy
	// Fault arms one injected failure; FaultPlan is a deterministic
	// schedule of them (RunConfig.Faults); FaultKind selects panic, error,
	// or delay.
	Fault     = runtime.Fault
	FaultPlan = runtime.FaultPlan
	FaultKind = runtime.FaultKind
)

// Failure kinds reported by RunError.
const (
	FailError    = runtime.FailError
	FailPanic    = runtime.FailPanic
	FailTimeout  = runtime.FailTimeout
	FailCanceled = runtime.FailCanceled
	FailDeadlock = runtime.FailDeadlock
	FailBudget   = runtime.FailBudget
)

// Fault kinds for injection plans.
const (
	FaultError = runtime.FaultError
	FaultPanic = runtime.FaultPanic
	FaultDelay = runtime.FaultDelay
)

// NewFaultPlan builds a deterministic fault-injection plan.
func NewFaultPlan(faults ...Fault) *FaultPlan { return runtime.NewFaultPlan(faults...) }

// KillOnce returns a plan failing the first execution of each named
// operator.
func KillOnce(kind FaultKind, ops ...string) *FaultPlan { return runtime.KillOnce(kind, ops...) }

// SeededFaultPlan derives a deterministic plan from a seed: one fault per
// named operator at a pseudo-random execution index in [1, maxExec].
func SeededFaultPlan(seed int64, ops []string, maxExec int64) *FaultPlan {
	return runtime.SeededFaultPlan(seed, ops, maxExec)
}

// Execution modes and affinity policies.
const (
	// Real executes on worker goroutines.
	Real = runtime.Real
	// Simulated executes deterministically on a virtual machine profile.
	Simulated = runtime.Simulated

	// AffinityNone, AffinityOperator, and AffinityData select the
	// simulated scheduler's placement policy.
	AffinityNone     = runtime.AffinityNone
	AffinityOperator = runtime.AffinityOperator
	AffinityData     = runtime.AffinityData
)

// Machine profiles of the paper's four platforms plus a workstation.
var (
	CrayYMP      = machine.CrayYMP
	Cray2        = machine.Cray2
	Sequent      = machine.Sequent
	Butterfly    = machine.Butterfly
	Uniprocessor = machine.Uniprocessor
)

// CompileOptions configures compilation.
type CompileOptions struct {
	// Registry supplies the program's operators; nil selects Builtins.
	Registry *Registry
	// OptLevel: 0 default (full), -1 none, 1 local only, 2 full.
	OptLevel int
	// Workers > 1 selects the parallel compiler (case study #2).
	Workers int
	// InlineBudget caps inline-expansion candidate size (0 = default).
	InlineBudget int
	// MemPlan runs the memory-plan pass: compile-time ownership analysis
	// that elides refcount traffic, guarantees in-place destructive updates
	// where proven, and recycles block payloads through per-worker free
	// lists. Output is bit-identical with or without it; see
	// Stats.ElidedRetains/ElidedReleases/PooledAllocs/CopiesAvoided for the
	// effect.
	MemPlan bool
	// Fuse runs the operator-fusion pass: chains (and delay-free trees) of
	// single-consumer nodes collapse into supernodes the runtime dispatches
	// once, and every node gets a static critical-path priority. Output is
	// bit-identical with or without it; see Stats.FusedNodes and
	// Stats.FusedDispatchesSaved for the effect.
	Fuse bool
	// FuseProfile optionally seeds fusion's critical-path weights with mean
	// operator costs (e.g. from a delprof run); missing operators fall back
	// to unit weight. Ignored unless Fuse is set.
	FuseProfile map[string]int64
}

// PassTime reports one compiler pass's wall time.
type PassTime = compile.PassTime

// Program is a compiled Delirium program ready for execution.
type Program struct {
	res *compile.Result
}

// Compile compiles Delirium source text. The file name is used in
// diagnostics only.
func Compile(file, src string, opts CompileOptions) (*Program, error) {
	res, err := compile.Compile(file, src, compile.Options{
		Registry:     opts.Registry,
		OptLevel:     opts.OptLevel,
		Workers:      opts.Workers,
		InlineBudget: opts.InlineBudget,
		MemPlan:      opts.MemPlan,
		Fuse:         opts.Fuse,
		FuseProfile:  opts.FuseProfile,
	})
	if err != nil {
		return nil, err
	}
	return &Program{res: res}, nil
}

// Passes returns per-pass compile times in pipeline order.
func (p *Program) Passes() []PassTime { return p.res.Passes }

// MemPlan returns the memory-plan report, nil unless the program was
// compiled with CompileOptions.MemPlan.
func (p *Program) MemPlan() *MemPlan { return p.res.MemPlan }

// MemPlan is the memory-plan pass report (see CompileOptions.MemPlan).
type MemPlan = opt.MemPlan

// FusePlan returns the operator-fusion report, nil unless the program was
// compiled with CompileOptions.Fuse.
func (p *Program) FusePlan() *FusePlan { return p.res.FusePlan }

// FusePlan is the operator-fusion pass report (see CompileOptions.Fuse).
type FusePlan = opt.FusePlan

// NodeCount returns the total coordination-graph node count.
func (p *Program) NodeCount() int { return p.res.Program.NodeCount() }

// Dot renders every template in Graphviz DOT format — the coordination
// framework visualization tool.
func (p *Program) Dot() string { return p.res.Program.Dot() }

// Graph exposes the underlying coordination-graph program for tooling.
func (p *Program) Graph() *graph.Program { return p.res.Program }

// NewEngine prepares an execution of the program. An engine runs once per
// Run; Reset it between runs (or use RunMany) to reuse its warmed state.
func (p *Program) NewEngine(cfg RunConfig) *Engine {
	return runtime.New(p.res.Program, cfg)
}

// Run compiles-and-goes: executes main with the given arguments under cfg
// and returns the result value.
func (p *Program) Run(cfg RunConfig, args ...Value) (Value, error) {
	return p.NewEngine(cfg).Run(args...)
}

// RunContext executes like Run under a context: cancellation (or the
// context deadline) stops the run at the next operator boundary, drains
// the schedulers, releases all live block references, and returns a
// RunError that unwraps to the context's error. Bound individual operator
// executions with RunConfig.OpTimeout or Operator.Timeout — Go cannot
// preempt an operator already inside embedded code.
func (p *Program) RunContext(ctx context.Context, cfg RunConfig, args ...Value) (Value, error) {
	return p.NewEngine(cfg).RunContext(ctx, args...)
}

// RunMany executes main once per argument list in batch through one reused
// engine: activation pools, block free lists, and the work-stealing
// scheduler warm up on the first invocation and serve the rest, and in
// multi-worker Real mode the worker goroutines persist across runs instead
// of being respawned per run — the repeated-run fast path for serving the
// same compiled graph many times. Each invocation keeps single-run
// semantics (individually deterministic, cancellable, retryable, and
// fault-injected); a failed invocation records its error in its RunResult
// slot and the batch continues.
func (p *Program) RunMany(cfg RunConfig, batch [][]Value) ([]RunResult, error) {
	return p.NewEngine(cfg).RunMany(context.Background(), batch)
}

// RunManyContext is RunMany under a context: once ctx dies, the in-flight
// invocation stops at the next operator boundary and the remaining
// invocations fail with FailCanceled without running.
func (p *Program) RunManyContext(ctx context.Context, cfg RunConfig, batch [][]Value) ([]RunResult, error) {
	return p.NewEngine(cfg).RunMany(ctx, batch)
}

// RunStats executes like Run but also returns the engine's statistics and
// timing log (nil unless cfg.Timing). Stats and timing are returned even
// when the run fails — counters and per-node timings are most needed when
// diagnosing a failed run — so check err before trusting the value.
func (p *Program) RunStats(cfg RunConfig, args ...Value) (Value, *Stats, *TimingLog, error) {
	e := p.NewEngine(cfg)
	v, err := e.Run(args...)
	return v, e.Stats(), e.Timing(), err
}

// RunTraced executes like Run with structured tracing forced on and returns
// the recorded trace alongside the result. Export the trace with
// Trace.WriteChrome (view at ui.perfetto.dev) or analyze it with
// Trace.CriticalPath. A failed run returns the partial trace recorded up to
// the failure alongside the RunError — exactly the trace worth exporting.
func (p *Program) RunTraced(cfg RunConfig, args ...Value) (Value, *Trace, error) {
	cfg.Trace = true
	e := p.NewEngine(cfg)
	v, err := e.Run(args...)
	return v, e.Trace(), err
}

// Eval compiles and runs a single Delirium expression against the builtin
// operators (plus the prelude's coordination structures) — a convenience
// for exploration and tests:
//
//	v, err := delirium.Eval("parreduce(addf, 0, parmap(sq, iota(10)))")
//
// is not valid (sq/addf undefined), but
//
//	v, err := delirium.Eval("add(mul(6, 7), tuple_len(<1, 2>))")
//
// returns Int(44). The expression runs on the real executor with two
// workers and a bounded operation budget.
func Eval(expr string) (Value, error) {
	src := prelude.Source() + "\nmain()\n  " + expr + "\n"
	prog, err := Compile("<eval>", src, CompileOptions{})
	if err != nil {
		return nil, err
	}
	return prog.Run(RunConfig{Mode: Real, Workers: 2, MaxOps: 100_000_000})
}
