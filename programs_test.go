package delirium_test

import (
	"os"
	"path/filepath"
	"testing"

	delirium "repro"
	"repro/internal/queens"
	"repro/internal/value"
)

// TestProgramsDirectory compiles and runs every shipped .dlr program with
// known arguments and checks the results, on both executors.
func TestProgramsDirectory(t *testing.T) {
	cases := []struct {
		file     string
		registry *delirium.Registry
		args     []delirium.Value
		check    func(t *testing.T, v delirium.Value)
	}{
		{
			file:     "queens8.dlr",
			registry: queens.Operators(),
			check: func(t *testing.T, v delirium.Value) {
				sols, err := queens.Solutions(v)
				if err != nil {
					t.Fatal(err)
				}
				if len(sols) != 92 {
					t.Errorf("queens8 = %d solutions, want 92", len(sols))
				}
			},
		},
		{
			file: "fib.dlr",
			args: []delirium.Value{delirium.Int(20)},
			check: func(t *testing.T, v delirium.Value) {
				if v != delirium.Int(6765) {
					t.Errorf("fib(20) = %v, want 6765", v)
				}
			},
		},
		{
			file: "sumloop.dlr",
			args: []delirium.Value{delirium.Int(1000)},
			check: func(t *testing.T, v delirium.Value) {
				if v != delirium.Int(500500) {
					t.Errorf("sum 1..1000 = %v, want 500500", v)
				}
			},
		},
		{
			file: "closures.dlr",
			args: []delirium.Value{delirium.Int(10)},
			check: func(t *testing.T, v delirium.Value) {
				if v != delirium.Int(110) { // lt(10,50) -> adder(10) = 10+100
					t.Errorf("closures(10) = %v, want 110", v)
				}
			},
		},
		{
			file: "closures.dlr",
			args: []delirium.Value{delirium.Int(60)},
			check: func(t *testing.T, v delirium.Value) {
				if v != delirium.Int(120) { // not lt(60,50) -> double(60)
					t.Errorf("closures(60) = %v, want 120", v)
				}
			},
		},
		{
			file: "collatz.dlr",
			args: []delirium.Value{delirium.Int(27)},
			check: func(t *testing.T, v delirium.Value) {
				if v != delirium.Int(111) {
					t.Errorf("collatz(27) = %v, want 111 steps", v)
				}
			},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("programs", c.file))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := delirium.Compile(c.file, string(src), delirium.CompileOptions{Registry: c.registry})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, mode := range []struct {
				name string
				cfg  delirium.RunConfig
			}{
				{"real", delirium.RunConfig{Mode: delirium.Real, Workers: 4, MaxOps: 100_000_000}},
				{"sim", delirium.RunConfig{Mode: delirium.Simulated, Workers: 4, MaxOps: 100_000_000}},
			} {
				t.Run(mode.name, func(t *testing.T) {
					v, err := prog.Run(mode.cfg, c.args...)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					c.check(t, v)
				})
			}
		})
	}
}

// TestProgramsAgreeAcrossExecutors double-checks value equality between
// the two executors for the numeric programs.
func TestProgramsAgreeAcrossExecutors(t *testing.T) {
	for _, file := range []string{"fib.dlr", "sumloop.dlr", "collatz.dlr"} {
		src, err := os.ReadFile(filepath.Join("programs", file))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := delirium.Compile(file, string(src), delirium.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		arg := delirium.Int(15)
		a, err := prog.Run(delirium.RunConfig{Mode: delirium.Real, Workers: 3, MaxOps: 100_000_000}, arg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := prog.Run(delirium.RunConfig{Mode: delirium.Simulated, Workers: 3, MaxOps: 100_000_000}, arg)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(a, b) {
			t.Errorf("%s: executors disagree: %v vs %v", file, a, b)
		}
	}
}
