// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison):
//
//	BenchmarkFig1RetinaSpeedup    Figure 1 (speedup reported as a metric)
//	BenchmarkTable1CompilerPasses Table 1 via the self-hosted compiler
//	BenchmarkTable1WallClock      Table 1 wall-clock variant on this host
//	BenchmarkOverheadRetina       §7 overhead claim (<3%, <1% on retina)
//	BenchmarkPriorityAblation     §7 priority scheme (peak activations)
//	BenchmarkAffinityAblation     §9.3 affinity on the NUMA Butterfly
//	BenchmarkTreeWalks*           §6.2 walk strategies
//	BenchmarkQueens8              §3 example end to end (wall time)
//	BenchmarkSchedulerQueens      real-executor work stealing across worker counts
//	BenchmarkSchedulerJacobi      same, on the fork/join array workload
//	BenchmarkRayTrace             application throughput (wall time)
//	BenchmarkCircuitSim           application throughput (wall time)
//	BenchmarkDispatch             real-executor scheduling cost per operator
//	BenchmarkDispatchTraced       same loop with structured tracing enabled
//
// Custom metrics (speedup, overhead_pct, peak ratios) carry the shape
// results; ns/op carries the host cost of regenerating them.
package delirium_test

import (
	"context"
	"fmt"

	"runtime"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/jacobi"
	"repro/internal/machine"
	"repro/internal/operator"
	"repro/internal/opt"
	"repro/internal/queens"
	"repro/internal/ray"
	"repro/internal/retina"
	rt "repro/internal/runtime"
	"repro/internal/selfcomp"
	"repro/internal/stress"
	"repro/internal/treewalk"
	"repro/internal/value"
)

// fig1Cfg is a reduced Figure 1 workload so the bench iterates quickly;
// the shape matches the full experiment.
func fig1Cfg() retina.Config {
	return retina.Config{W: 48, H: 48, K: 5, Slabs: 4, Timesteps: 2,
		TargetsPerQuarter: 12, TargetWork: 1200, Seed: 1990}
}

func BenchmarkFig1RetinaSpeedup(b *testing.B) {
	cfg := fig1Cfg()
	mach := machine.CrayYMP()
	var speedup float64
	for i := 0; i < b.N; i++ {
		makespan := func(procs int) int64 {
			_, eng, err := retina.Run(cfg, retina.V2, rt.Config{
				Mode: rt.Simulated, Workers: procs, Machine: mach, MaxOps: 50_000_000})
			if err != nil {
				b.Fatal(err)
			}
			return eng.Stats().MakespanTicks
		}
		speedup = float64(makespan(1)) / float64(makespan(4))
	}
	b.ReportMetric(speedup, "speedup4p")
}

func BenchmarkTable1CompilerPasses(b *testing.B) {
	src := compile.Generate(120, 1990)
	var total float64
	for i := 0; i < b.N; i++ {
		seq, err := selfcomp.Compile("w.dlr", src, nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		par, err := selfcomp.Compile("w.dlr", src, nil, 3)
		if err != nil {
			b.Fatal(err)
		}
		total = float64(seq.TotalTicks) / float64(par.TotalTicks)
	}
	b.ReportMetric(total, "speedup3p")
}

func BenchmarkTable1WallClock(b *testing.B) {
	src := compile.Generate(300, 1990)
	workers := runtime.NumCPU()
	if workers > 3 {
		workers = 3
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		// Best-of-3 per driver, the same hygiene delx tab1wall uses:
		// wall-clock parallel compiles on a small host are noisy.
		best := func(w int) int64 {
			var min int64 = 1 << 62
			for r := 0; r < 3; r++ {
				res, err := compile.Compile("w.dlr", src, compile.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if n := res.TotalNanos(); n < min {
					min = n
				}
			}
			return min
		}
		speedup = float64(best(1)) / float64(best(workers))
	}
	b.ReportMetric(speedup, "wall_speedup")
}

func BenchmarkOverheadRetina(b *testing.B) {
	cfg := fig1Cfg()
	var frac float64
	for i := 0; i < b.N; i++ {
		_, eng, err := retina.Run(cfg, retina.V2, rt.Config{
			Mode: rt.Simulated, Workers: 4, Machine: machine.CrayYMP(), MaxOps: 50_000_000})
		if err != nil {
			b.Fatal(err)
		}
		frac = eng.Stats().OverheadFraction()
	}
	b.ReportMetric(frac*100, "overhead_pct")
}

func BenchmarkPriorityAblation(b *testing.B) {
	var withPri, fifo int64
	for i := 0; i < b.N; i++ {
		for _, disable := range []bool{false, true} {
			_, eng, err := queens.Run(6, rt.Config{
				Mode: rt.Simulated, Workers: 4, MaxOps: 50_000_000, DisablePriorities: disable})
			if err != nil {
				b.Fatal(err)
			}
			if disable {
				fifo = eng.Stats().PeakLive
			} else {
				withPri = eng.Stats().PeakLive
			}
		}
	}
	b.ReportMetric(float64(withPri), "peak_priorities")
	b.ReportMetric(float64(fifo), "peak_fifo")
}

func BenchmarkAffinityAblation(b *testing.B) {
	cfg := retina.Config{W: 32, H: 32, K: 5, Slabs: 4, Timesteps: 2,
		TargetsPerQuarter: 8, TargetWork: 800, Seed: 1990}
	mach := machine.Butterfly().WithProcs(4)
	var gain float64
	for i := 0; i < b.N; i++ {
		run := func(pol rt.AffinityPolicy) int64 {
			_, eng, err := retina.Run(cfg, retina.V2, rt.Config{
				Mode: rt.Simulated, Workers: 4, Machine: mach, Affinity: pol, MaxOps: 50_000_000})
			if err != nil {
				b.Fatal(err)
			}
			return eng.Stats().MakespanTicks
		}
		gain = float64(run(rt.AffinityNone)) / float64(run(rt.AffinityData))
	}
	b.ReportMetric(gain, "numa_gain")
}

func benchWalk(b *testing.B, run func(root *treewalk.Node)) {
	b.Helper()
	root := treewalk.Build(200000, 4, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(root)
	}
}

func BenchmarkTreeWalksTopDown(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchName(workers), func(b *testing.B) {
			benchWalk(b, func(root *treewalk.Node) {
				treewalk.TopDown(root, workers, func(n *treewalk.Node) {
					n.Weight = n.Weight ^ 1
				})
			})
		})
	}
}

func BenchmarkTreeWalksInherited(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchName(workers), func(b *testing.B) {
			benchWalk(b, func(root *treewalk.Node) {
				treewalk.Inherited(root, workers, 0, func(n *treewalk.Node, in interface{}) interface{} {
					return in.(int) + 1
				})
			})
		})
	}
}

func BenchmarkTreeWalksSynthesized(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchName(workers), func(b *testing.B) {
			benchWalk(b, func(root *treewalk.Node) {
				treewalk.Synthesized(root, workers, func(n *treewalk.Node, ch []interface{}) interface{} {
					t := 1
					for _, c := range ch {
						t += c.(int)
					}
					return t
				})
			})
		})
	}
}

func benchName(workers int) string {
	return "workers-" + string(rune('0'+workers))
}

func BenchmarkQueens8(b *testing.B) {
	prog, err := queens.CompileProgram(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := rt.New(prog, rt.Config{Mode: rt.Real, Workers: runtime.NumCPU(), MaxOps: 200_000_000})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchScheduler measures Real-mode throughput of one program across
// worker counts and surfaces the work-stealing counters — the scheduler
// benchmark pair for the work-stealing ready queue (steals and parks per
// run tell whether the pool actually spread the work or slept on it).
func benchScheduler(b *testing.B, prog *graph.Program, maxOps int64) {
	for _, workers := range []int{1, 2, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			var steals, parks, contention float64
			for i := 0; i < b.N; i++ {
				eng := rt.New(prog, rt.Config{Mode: rt.Real, Workers: workers, MaxOps: maxOps})
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				st := eng.Stats()
				steals += float64(st.Steals)
				parks += float64(st.Parks)
				contention += float64(st.StealContention)
			}
			b.ReportMetric(steals/float64(b.N), "steals/run")
			b.ReportMetric(parks/float64(b.N), "parks/run")
			b.ReportMetric(contention/float64(b.N), "contended/run")
		})
	}
}

// BenchmarkSchedulerQueens stresses the recursive-expansion path: the
// backtracker floods the deques with PriRecursive work that thieves drain.
func BenchmarkSchedulerQueens(b *testing.B) {
	prog, err := queens.CompileProgram(7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchScheduler(b, prog, 200_000_000)
}

// BenchmarkSchedulerJacobi stresses the fork/join + data-dependent-loop
// path: four-way sweeps separated by sequential joins, so workers park and
// wake every iteration.
func BenchmarkSchedulerJacobi(b *testing.B) {
	prog, err := jacobi.CompileProgram(jacobi.Config{N: 64, Tol: 1e-2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchScheduler(b, prog, 100_000_000)
}

func BenchmarkRayTrace(b *testing.B) {
	cfg := ray.Config{W: 96, H: 64, MaxDepth: 3, Spheres: 6, Seed: 7}
	prog, err := ray.CompileProgram(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := rt.New(prog, rt.Config{Mode: rt.Real, Workers: runtime.NumCPU(), MaxOps: 10_000_000})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircuitSim(b *testing.B) {
	cfg := circuit.Config{Inputs: 32, Gates: 3000, Cycles: 10, Seed: 11}
	prog, err := circuit.CompileProgram(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := rt.New(prog, rt.Config{Mode: rt.Real, Workers: runtime.NumCPU(), MaxOps: 100_000_000})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDispatch measures the real executor's per-operator scheduling cost
// with a trivial-operator loop — the wall-clock analogue of the simulated
// dispatch overhead.
func benchDispatch(b *testing.B, copts compile.Options, cfg rt.Config) {
	b.Helper()
	src := `
main(n)
  iterate { i = 0, incr(i) } while lt(i, n), result i
`
	res, err := compile.Compile("spin.dlr", src, copts)
	if err != nil {
		b.Fatal(err)
	}
	const iters = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := rt.New(res.Program, cfg)
		if _, err := eng.Run(value.Int(iters)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/iters, "ns/operator")
}

// BenchmarkDispatch is the trace-disabled, plan-disabled baseline. The
// tracer and the memory plan must each cost exactly one nil pointer check
// per site here; compare against BenchmarkDispatchTraced and
// BenchmarkDispatchMemPlan for the price of turning either on. CI guards
// this number: an unplanned-dispatch regression above 2% fails the run.
func BenchmarkDispatch(b *testing.B) {
	benchDispatch(b, compile.Options{}, rt.Config{Mode: rt.Real, Workers: 1})
}

// BenchmarkDispatchMemPlan is the same loop compiled with the memory plan —
// the guard pair for the copy-elision machinery. The loop moves no blocks,
// so this prices the planned settle path's bookkeeping alone.
func BenchmarkDispatchMemPlan(b *testing.B) {
	benchDispatch(b, compile.Options{MemPlan: true}, rt.Config{Mode: rt.Real, Workers: 1})
}

// BenchmarkDispatchTraced is the same loop with structured tracing enabled —
// the guard pair for the observability tax. A regression in the *untraced*
// number above is the one that matters; this one bounds what -trace costs a
// profiling run.
func BenchmarkDispatchTraced(b *testing.B) {
	benchDispatch(b, compile.Options{}, rt.Config{Mode: rt.Real, Workers: 1, Trace: true})
}

// BenchmarkDispatchRetry is the same loop with deterministic retry armed —
// the guard pair for the fault-tolerance tax. incr is pure and takes no
// destructive arguments, so this prices the retry bookkeeping alone (loop
// setup, pristine tracking), not snapshot copies.
func BenchmarkDispatchRetry(b *testing.B) {
	benchDispatch(b, compile.Options{}, rt.Config{Mode: rt.Real, Workers: 1,
		Retry: rt.RetryPolicy{MaxAttempts: 3}})
}

// benchDispatchChain measures dispatch cost on a chain-shaped body: each
// loop iteration runs a 32-operator incr chain, the shape operator fusion
// targets. With fusion off, every link is a separate ready-queue dispatch;
// with fusion on the whole chain (plus the loop-carried call) executes as
// one supernode. The chain is deep enough that the loop's fixed costs
// (cond, activation turnover) amortize away and the per-link dispatch
// price dominates the metric.
func benchDispatchChain(b *testing.B, copts compile.Options, cfg rt.Config) {
	b.Helper()
	const depth = 32
	body := "i"
	for i := 0; i < depth; i++ {
		body = "incr(" + body + ")"
	}
	src := "main(n)\n  iterate { i = 0, " + body + " } while lt(i, n), result i\n"
	res, err := compile.Compile("chain.dlr", src, copts)
	if err != nil {
		b.Fatal(err)
	}
	// i advances by depth per loop pass, so the run executes iters incr
	// operators in total (iters/depth loop passes).
	const iters = 320 * depth
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := rt.New(res.Program, cfg)
		if _, err := eng.Run(value.Int(iters)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/iters, "ns/operator")
}

// BenchmarkDispatchChain is the unfused chain baseline — the number
// BenchmarkDispatchFused is measured against. CI guards the pair: fused
// dispatch must stay at least 25% below this.
func BenchmarkDispatchChain(b *testing.B) {
	benchDispatchChain(b, compile.Options{}, rt.Config{Mode: rt.Real, Workers: 1})
}

// BenchmarkDispatchFused is the same chain compiled with operator fusion:
// the eight incr links collapse into one supernode dispatched once per
// iteration, eliminating seven ready-queue round trips and their counter
// traffic.
func BenchmarkDispatchFused(b *testing.B) {
	benchDispatchChain(b, compile.Options{Fuse: true}, rt.Config{Mode: rt.Real, Workers: 1})
}

// BenchmarkDispatchFusedMemPlan stacks fusion on the memory plan — the
// full optimization pipeline on the chain shape.
func BenchmarkDispatchFusedMemPlan(b *testing.B) {
	benchDispatchChain(b, compile.Options{Fuse: true, MemPlan: true}, rt.Config{Mode: rt.Real, Workers: 1})
}

func BenchmarkCompileWorkload(b *testing.B) {
	src := compile.Generate(200, 7)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile("w.dlr", src, compile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalksTable(b *testing.B) {
	// The §6.2 experiment as a single metric: synthesized-walk speedup at
	// the host's core count.
	workers := runtime.NumCPU()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Walks(150000, []int{1, workers}, 1)
		var t1, tn int64
		for _, r := range rows {
			if r.Strategy == "synthesized" {
				if r.Workers == 1 {
					t1 = r.Nanos
				} else {
					tn = r.Nanos
				}
			}
		}
		speedup = float64(t1) / float64(tn)
	}
	b.ReportMetric(speedup, "walk_speedup")
}

// throughputJacobi is the small repeated-run workload: a jacobi solve tiny
// enough that per-run fixed costs (engine construction, worker spawn, cold
// pools) dominate — exactly what the reusable-engine fast path amortizes.
func throughputJacobi(b *testing.B) *graph.Program {
	b.Helper()
	prog, err := jacobi.CompileProgram(jacobi.Config{N: 6, Tol: 1e6, MemPlan: true})
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

var throughputCfg = rt.Config{Mode: rt.Real, Workers: 8, MaxOps: 100_000_000}

// BenchmarkRunThroughputFresh is the pre-reuse cost model: a new engine —
// new scheduler, new worker goroutines, cold activation pools and block
// free lists — constructed for every run of the same compiled graph.
func BenchmarkRunThroughputFresh(b *testing.B) {
	prog := throughputJacobi(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := rt.New(prog, throughputCfg)
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunThroughputReused is the throughput mode: one engine serves
// the whole stream via RunMany — warmed pools, a reopened scheduler, and
// persistent worker goroutines parked between runs. CI gates the pair: the
// reused path must stay at least 2x the runs/sec of the fresh path.
func BenchmarkRunThroughputReused(b *testing.B) {
	prog := throughputJacobi(b)
	eng := rt.New(prog, throughputCfg)
	b.ResetTimer()
	// Chunk the stream so the held results stay bounded regardless of b.N.
	for done := 0; done < b.N; {
		n := b.N - done
		if n > 256 {
			n = 256
		}
		results, err := eng.RunMany(context.Background(), make([][]value.Value, n))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		done += n
	}
}

// stressProgram compiles one seeded stress program at the given scale.
func stressProgram(b *testing.B, funcs int, fuse, memplan bool) *graph.Program {
	b.Helper()
	src := stress.Generate(stress.GenConfig{Funcs: funcs, Seed: 1990})
	res, err := compile.Compile("stress.dlr", src, compile.Options{
		Registry: stress.Operators(), Fuse: fuse, MemPlan: memplan})
	if err != nil {
		b.Fatal(err)
	}
	return res.Program
}

// BenchmarkStressGenerate measures generating plus compiling a 10k-node
// class irregular graph — the compiler-side cost of the stress harness.
func BenchmarkStressGenerate(b *testing.B) {
	var nodes int
	for i := 0; i < b.N; i++ {
		prog := stressProgram(b, 600, false, false)
		nodes = 0
		for _, t := range prog.Templates {
			nodes += len(t.Nodes)
		}
	}
	b.ReportMetric(float64(nodes), "graph_nodes")
}

// BenchmarkStressRun measures executing one mid-size stress program on the
// real executor with both optimization passes on — the per-seed runtime
// cost that dominates a stress sweep.
func BenchmarkStressRun(b *testing.B) {
	prog := stressProgram(b, 64, true, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := rt.New(prog, rt.Config{Mode: rt.Real, Workers: 4, MaxOps: 50_000_000})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStressOracle measures one seed's full trip through the
// differential matrix (every compile variant × every run spec) — the
// end-to-end unit the nightly job multiplies by its seed count.
func BenchmarkStressOracle(b *testing.B) {
	p := stress.NewProgram(stress.GenConfig{Funcs: 24, Seed: 1990})
	src := p.Source()
	var runs int
	for i := 0; i < b.N; i++ {
		rep := stress.CheckSource("stress.dlr", src, stress.Specs())
		if !rep.OK() {
			b.Fatalf("oracle failure: %s", rep.Failures[0])
		}
		runs = rep.Runs
	}
	b.ReportMetric(float64(runs), "oracle_runs")
}

// --- adaptive-loop benchmarks (BENCH_adaptive.json, bench-adaptive CI job) ---

// benchAdaptiveSink defeats dead-code elimination of the busy loops below.
var benchAdaptiveSink uint64

// adaptiveChainRegistry builds operators with a 10x cost asymmetry the
// compiler cannot see: hslow spins ten times longer than hfast, but both
// charge their true cost only at run time. Unit-weight fusion ranks their
// chains identically; profile-guided fusion learns the difference.
func adaptiveChainRegistry() *operator.Registry {
	reg := operator.NewRegistry(operator.Builtins())
	spin := func(iters int64) {
		x := uint64(2463534242)
		for i := int64(0); i < iters; i++ {
			x ^= x >> 13
			x *= 1099511628211
		}
		benchAdaptiveSink += x
	}
	reg.MustRegister(&operator.Operator{
		Name: "hseed", Arity: 0,
		Fn: func(ctx operator.Context, _ []value.Value) (value.Value, error) {
			ctx.Charge(1)
			return value.Int(1), nil
		},
	})
	for _, op := range []struct {
		name  string
		iters int64
	}{{"hfast", 4_000}, {"hslow", 40_000}} {
		iters := op.iters
		reg.MustRegister(&operator.Operator{
			Name: op.name, Arity: 1,
			Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
				ctx.Charge(iters)
				spin(iters)
				return args[0], nil
			},
		})
	}
	reg.MustRegister(&operator.Operator{
		Name: "hjoin", Arity: 7,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			ctx.Charge(1)
			var s value.Int
			for _, a := range args {
				s += a.(value.Int)
			}
			return s, nil
		},
	})
	return reg
}

// adaptiveChainSource is seven 8-deep chains joined at arity 7, with the
// heavy chain declared in the MIDDLE of the cheap ones. Declaration order is
// the unit-weight tie-break, so an unprofiled schedule starts three cheap
// chains before the heavy one — the makespan then carries that late start.
// Measured weights push the heavy chain's bottom level past every cheap
// chain and it starts first.
func adaptiveChainSource() string {
	var b strings.Builder
	b.WriteString("main()\n  let s = hseed()\n")
	ends := make([]string, 0, 7)
	for c := 1; c <= 7; c++ {
		op := "hfast"
		if c == 4 {
			op = "hslow"
		}
		prev := "s"
		for k := 1; k <= 8; k++ {
			v := fmt.Sprintf("c%dk%d", c, k)
			fmt.Fprintf(&b, "      %s = %s(%s)\n", v, op, prev)
			prev = v
		}
		ends = append(ends, prev)
	}
	fmt.Fprintf(&b, "  in hjoin(%s)\n", strings.Join(ends, ","))
	return b.String()
}

// benchAdaptiveChain runs the chain workload on 2 real workers, optionally
// calibrating first and re-fusing with the measured weights — the adaptive
// loop's compile path, isolated so the pair gates "tuned beats unit".
func benchAdaptiveChain(b *testing.B, tuned bool) {
	b.Helper()
	reg := adaptiveChainRegistry()
	src := adaptiveChainSource()
	var prof map[string]int64
	if tuned {
		cal, err := compile.Compile("chain.dlr", src, compile.Options{Registry: reg, Fuse: true})
		if err != nil {
			b.Fatal(err)
		}
		eng := rt.New(cal.Program, rt.Config{Mode: rt.Real, Workers: 1, Timing: true, MaxOps: 1_000_000})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		prof = eng.ProfileWeights()
		if len(prof) == 0 {
			b.Fatal("calibration measured nothing")
		}
	}
	res, err := compile.Compile("chain.dlr", src, compile.Options{Registry: reg, Fuse: true, FuseProfile: prof})
	if err != nil {
		b.Fatal(err)
	}
	// Deterministic half of the CI gate: the virtual-clock makespan at two
	// modeled workers shows the schedule itself (heavy chain first vs third),
	// independent of how many cores the runner has or how noisy its clock is.
	sim := rt.New(res.Program, rt.Config{Mode: rt.Simulated, Workers: 2,
		Machine: machine.CrayYMP(), MaxOps: 1_000_000})
	if _, err := sim.Run(); err != nil {
		b.Fatal(err)
	}
	vticks := float64(sim.Stats().MakespanTicks)
	var ops int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := rt.New(res.Program, rt.Config{Mode: rt.Real, Workers: 2, MaxOps: 1_000_000})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		ops += eng.Stats().OperatorsRun
	}
	if ops > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ops), "ns/operator")
	}
	b.ReportMetric(vticks, "vticks")
}

func BenchmarkAdaptiveChainUnit(b *testing.B)  { benchAdaptiveChain(b, false) }
func BenchmarkAdaptiveChainTuned(b *testing.B) { benchAdaptiveChain(b, true) }

// benchAdaptiveJacobi is the sanity half of the CI gate: on a workload whose
// compile-time Charge estimates are already accurate, profile-guided
// re-fusion must not regress (the gate allows measurement noise but no
// structural slowdown).
func benchAdaptiveJacobi(b *testing.B, tuned bool) {
	b.Helper()
	cfg := jacobi.Config{N: 64, Tol: 1e-2, MaxSweeps: 200, MemPlan: true, Fuse: true}
	if tuned {
		cal, err := jacobi.CompileProgram(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng := rt.New(cal, rt.Config{Mode: rt.Real, Workers: 1, Timing: true, MaxOps: 100_000_000})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		cfg.FuseProfile = eng.ProfileWeights()
	}
	prog, err := jacobi.CompileProgram(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := rt.New(prog, rt.Config{Mode: rt.Real, Workers: 2, MaxOps: 100_000_000})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdaptiveJacobiUnit(b *testing.B)  { benchAdaptiveJacobi(b, false) }
func BenchmarkAdaptiveJacobiTuned(b *testing.B) { benchAdaptiveJacobi(b, true) }

// affinityBenchRegistry builds the block-chain operators for the locality
// pair: amk allocates an owned block, astep mutates it in place, asum folds
// it to a float. Work charges are kept small relative to the block size so
// the modeled memory traffic — local vs remote words on the NUMA profile —
// dominates each step's price.
func affinityBenchRegistry() *operator.Registry {
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{
		Name: "amk", Arity: 1, Fresh: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			n := int(args[0].(value.Int))
			vec := make(value.FloatVec, n)
			for i := range vec {
				vec[i] = float64(i % 7)
			}
			ctx.Charge(int64(n / 8))
			return value.NewBlockStats(vec, ctx.BlockStats()), nil
		},
	})
	reg.MustRegister(&operator.Operator{
		Name: "astep", Arity: 1, Destructive: []bool{true},
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			vec := args[0].(*value.Block).Data().(value.FloatVec)
			for i := range vec {
				vec[i] += 1
			}
			ctx.Charge(int64(len(vec) / 8))
			return args[0], nil
		},
	})
	reg.MustRegister(&operator.Operator{
		Name: "asum", Arity: 1,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			vec := args[0].(*value.Block).Data().(value.FloatVec)
			var s float64
			for _, x := range vec {
				s += x
			}
			ctx.Charge(int64(len(vec) / 8))
			return value.Float(s), nil
		},
	})
	return reg
}

// affinityBenchSource is `chains` independent destructive block chains of
// `depth` astep links over `words`-word blocks, folded with adds — one
// block-carrying chain per processor with room to spare, so a scheduler
// that follows the compile-time hints keeps every chain on one processor
// (all-local traffic) while earliest-free placement scatters the links
// across processors and pays the remote-word rate on each hop.
func affinityBenchSource(chains, depth, words int) string {
	var sb strings.Builder
	sb.WriteString("main()\n  let ")
	for c := 1; c <= chains; c++ {
		prev := fmt.Sprintf("c%dk0", c)
		fmt.Fprintf(&sb, "%s = amk(%d)\n      ", prev, words)
		for k := 1; k <= depth; k++ {
			v := fmt.Sprintf("c%dk%d", c, k)
			fmt.Fprintf(&sb, "%s = astep(%s)\n      ", v, prev)
			prev = v
		}
		fmt.Fprintf(&sb, "s%d = asum(%s)\n", c, prev)
		if c < chains {
			sb.WriteString("      ")
		}
	}
	fold := "s1"
	for c := 2; c <= chains; c++ {
		fold = fmt.Sprintf("add(%s, s%d)", fold, c)
	}
	fmt.Fprintf(&sb, "  in %s\n", fold)
	return sb.String()
}

// benchDispatchAffinity is the deterministic half of the locality CI gate:
// the same affinity-planned program runs on the simulated BBN Butterfly
// (16 procs, remote words 6x local) with hints on versus off, and the
// virtual-clock makespan is reported as the gated `vticks` metric. The
// program is compiled unfused on purpose — every chain link is then an
// individual placement decision, which is exactly what the hint machinery
// arbitrates (fusion would collapse each chain to one supernode and hide
// the placement problem the pair measures).
func benchDispatchAffinity(b *testing.B, hints bool) {
	b.Helper()
	res, err := compile.Compile("affinity.dlr", affinityBenchSource(12, 8, 512),
		compile.Options{Registry: affinityBenchRegistry(), MemPlan: true})
	if err != nil {
		b.Fatal(err)
	}
	opt.PlanAffinity(res.Program)
	var vticks float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := rt.New(res.Program, rt.Config{Mode: rt.Simulated, Workers: 16,
			Machine: machine.Butterfly(), MaxOps: 10_000_000, AffinityHints: hints})
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
		vticks = float64(sim.Stats().MakespanTicks)
	}
	b.ReportMetric(vticks, "vticks")
}

// BenchmarkDispatchAffinity / BenchmarkDispatchAffinityBase are the CI
// pair behind BENCH_locality.json: hints on must beat hints off by >=10%
// on the deterministic vticks metric.
func BenchmarkDispatchAffinity(b *testing.B)     { benchDispatchAffinity(b, true) }
func BenchmarkDispatchAffinityBase(b *testing.B) { benchDispatchAffinity(b, false) }
