package delirium_test

import (
	"strings"
	"testing"

	delirium "repro"
)

func TestCompileAndRunQuickstart(t *testing.T) {
	// The §2.1 fork/join example with convolve standing in for real work.
	reg := delirium.NewRegistry(delirium.Builtins())
	reg.MustRegister(&delirium.Operator{
		Name: "init_fn", Arity: 0,
		Fn: func(ctx delirium.Context, _ []delirium.Value) (delirium.Value, error) {
			ctx.Charge(1)
			return delirium.Int(10), nil
		},
	})
	reg.MustRegister(&delirium.Operator{
		Name: "convolve", Arity: 2,
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			ctx.Charge(5)
			return args[0].(delirium.Int) + args[1].(delirium.Int), nil
		},
	})
	reg.MustRegister(&delirium.Operator{
		Name: "term_fn", Arity: 4,
		Fn: func(ctx delirium.Context, args []delirium.Value) (delirium.Value, error) {
			ctx.Charge(1)
			var sum delirium.Int
			for _, a := range args {
				sum += a.(delirium.Int)
			}
			return sum, nil
		},
	})
	src := `
main()
  let
    a_start=init_fn()
    a=convolve(a_start,0)
    b=convolve(a_start,1)
    c=convolve(a_start,2)
    d=convolve(a_start,3)
  in term_fn(a,b,c,d)
`
	prog, err := delirium.Compile("quickstart.dlr", src, delirium.CompileOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	out, err := prog.Run(delirium.RunConfig{Mode: delirium.Real, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out != delirium.Int(46) { // (10+0)+(10+1)+(10+2)+(10+3)
		t.Errorf("result = %v, want 46", out)
	}
}

func TestPublicAPIArgsAndStats(t *testing.T) {
	prog, err := delirium.Compile("t.dlr", "main(x) mul(x, add(x, 1))", delirium.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, stats, timing, err := prog.RunStats(delirium.RunConfig{
		Mode: delirium.Simulated, Workers: 2, Timing: true, Machine: delirium.CrayYMP(),
	}, delirium.Int(6))
	if err != nil {
		t.Fatal(err)
	}
	if v != delirium.Int(42) {
		t.Errorf("6*7 = %v", v)
	}
	if stats.OperatorsRun != 2 {
		t.Errorf("OperatorsRun = %d, want 2", stats.OperatorsRun)
	}
	if timing == nil || len(timing.Entries()) != 2 {
		t.Errorf("timing entries = %v", timing)
	}
	if stats.MakespanTicks <= 0 {
		t.Error("no virtual time elapsed")
	}
}

func TestPublicAPICompileError(t *testing.T) {
	if _, err := delirium.Compile("t.dlr", "main() undefined_op(1)", delirium.CompileOptions{}); err == nil {
		t.Error("expected compile error")
	}
}

func TestPublicAPIDotAndPasses(t *testing.T) {
	prog, err := delirium.Compile("t.dlr", "main() incr(1)", delirium.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Dot(), "digraph") {
		t.Error("Dot output missing header")
	}
	if len(prog.Passes()) != 6 {
		t.Errorf("passes = %d, want 6", len(prog.Passes()))
	}
	if prog.NodeCount() == 0 {
		t.Error("no nodes")
	}
	if prog.Graph() == nil || prog.Graph().Main == nil {
		t.Error("graph access broken")
	}
}

func TestMachineProfiles(t *testing.T) {
	for _, p := range []*delirium.MachineProfile{
		delirium.CrayYMP(), delirium.Cray2(), delirium.Sequent(),
		delirium.Butterfly(), delirium.Uniprocessor(),
	} {
		if p.Procs < 1 || p.Name == "" {
			t.Errorf("bad profile %+v", p)
		}
		if p.String() == "" {
			t.Error("empty profile description")
		}
	}
	if delirium.Butterfly().Uniform() {
		t.Error("Butterfly should be NUMA")
	}
	if !delirium.CrayYMP().Uniform() {
		t.Error("Cray should be UMA")
	}
	if delirium.CrayYMP().WithProcs(2).Procs != 2 {
		t.Error("WithProcs broken")
	}
}

func TestParallelCompileViaPublicAPI(t *testing.T) {
	src := `
f1(x) add(x, 1)
f2(x) add(x, 2)
f3(x) add(x, 3)
main() add(f1(1), add(f2(2), f3(3)))
`
	seq, err := delirium.Compile("t.dlr", src, delirium.CompileOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := delirium.Compile("t.dlr", src, delirium.CompileOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := seq.Run(delirium.RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Run(delirium.RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("sequential and parallel compilers disagree: %v vs %v", a, b)
	}
}

func TestEval(t *testing.T) {
	v, err := delirium.Eval("add(mul(6, 7), tuple_len(<1, 2>))")
	if err != nil {
		t.Fatal(err)
	}
	if v != delirium.Int(44) {
		t.Errorf("Eval = %v, want 44", v)
	}
	// The prelude is in scope.
	v, err = delirium.Eval("tuple_len(iota(9))")
	if err != nil {
		t.Fatal(err)
	}
	if v != delirium.Int(9) {
		t.Errorf("Eval iota = %v", v)
	}
	if _, err := delirium.Eval("undefined_thing(1)"); err == nil {
		t.Error("bad expression accepted")
	}
	if _, err := delirium.Eval("let oops"); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestPreludeExport(t *testing.T) {
	if !strings.Contains(delirium.Prelude(), "parmap") {
		t.Error("Prelude() missing parmap")
	}
}

// TestRunStatsOnFailure: a failed run must still surface its counters and
// timing log — they are most useful when diagnosing exactly that run.
func TestRunStatsOnFailure(t *testing.T) {
	prog, err := delirium.Compile("t.dlr", "main(a, b) add(incr(a), div(a, b))", delirium.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, stats, timing, err := prog.RunStats(delirium.RunConfig{
		Mode: delirium.Real, Workers: 2, Timing: true,
	}, delirium.Int(1), delirium.Int(0))
	if err == nil {
		t.Fatal("division by zero must fail")
	}
	if v != nil {
		t.Errorf("failed run value = %v, want nil", v)
	}
	if stats == nil || stats.OpsExecuted == 0 {
		t.Errorf("failed run stats = %+v, want the partial counters", stats)
	}
	if timing == nil {
		t.Error("failed run timing = nil, want the partial log")
	}
}

// TestRunTracedOnFailure: the partial trace recorded up to the failure is
// returned alongside the RunError.
func TestRunTracedOnFailure(t *testing.T) {
	prog, err := delirium.Compile("t.dlr", "main(a, b) add(incr(a), div(a, b))", delirium.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, trace, err := prog.RunTraced(delirium.RunConfig{Mode: delirium.Real, Workers: 2},
		delirium.Int(1), delirium.Int(0))
	if err == nil {
		t.Fatal("division by zero must fail")
	}
	if v != nil {
		t.Errorf("failed run value = %v, want nil", v)
	}
	if trace == nil || len(trace.Events) == 0 {
		t.Error("failed run trace empty, want the events recorded before the failure")
	}
}

// TestPublicRunMany: the batched entry point through the public API — mixed
// success and failure, engine reused across the whole batch.
func TestPublicRunMany(t *testing.T) {
	prog, err := delirium.Compile("t.dlr", "main(a, b) div(a, b)", delirium.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := prog.RunMany(delirium.RunConfig{Mode: delirium.Real, Workers: 4},
		[][]delirium.Value{
			{delirium.Int(84), delirium.Int(2)},
			{delirium.Int(1), delirium.Int(0)},
			{delirium.Int(9), delirium.Int(3)},
		})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Value != delirium.Int(42) {
		t.Errorf("invocation 0 = %+v", results[0])
	}
	if results[1].Err == nil {
		t.Error("invocation 1 must fail (division by zero)")
	}
	if results[2].Err != nil || results[2].Value != delirium.Int(3) {
		t.Errorf("invocation 2 = %+v", results[2])
	}
}
