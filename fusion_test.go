package delirium_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/jacobi"
	"repro/internal/operator"
	"repro/internal/queens"
	"repro/internal/runtime"
	"repro/internal/value"
)

// fusionWorkers are the worker counts every fusion test sweeps: serial,
// the smallest concurrent pool, and an oversubscribed one.
var fusionWorkers = []int{1, 2, 8}

// updateDot regenerates the fused-DOT golden file instead of comparing.
var updateDot = flag.Bool("update-dot", false, "rewrite testdata/jacobi_fused.dot")

// TestFusionQueensConsistency checks that operator fusion is invisible to
// n-queens: fused solutions match the unfused ones exactly at every worker
// count in both executors, and the fused counters confirm supernodes
// actually dispatched.
func TestFusionQueensConsistency(t *testing.T) {
	const n = 6
	want, base, err := queens.Run(n, runtime.Config{Mode: runtime.Real, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := base.Stats().FusedNodes; got != 0 {
		t.Fatalf("unfused run counted %d fused nodes", got)
	}
	for _, mode := range []runtime.Mode{runtime.Real, runtime.Simulated} {
		for _, workers := range fusionWorkers {
			sols, eng, err := queens.RunFused(n, true, runtime.Config{Mode: mode, Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", mode, workers, err)
			}
			if len(sols) != len(want) {
				t.Fatalf("%v workers=%d: %d solutions, want %d", mode, workers, len(sols), len(want))
			}
			for i := range sols {
				if fmt.Sprint(sols[i]) != fmt.Sprint(want[i]) {
					t.Fatalf("%v workers=%d: solution %d = %v, want %v", mode, workers, i, sols[i], want[i])
				}
			}
			st := eng.Stats()
			if st.FusedNodes == 0 || st.FusedDispatchesSaved == 0 {
				t.Errorf("%v workers=%d: fused counters empty (nodes=%d saved=%d)",
					mode, workers, st.FusedNodes, st.FusedDispatchesSaved)
			}
			if !strings.Contains(st.String(), "fused=") {
				t.Errorf("%v workers=%d: Stats.String misses fused counters: %s", mode, workers, st)
			}
		}
	}
}

// TestFusionJacobiConsistency checks the solver against its sequential
// reference with fusion on, alone and stacked on the memory plan, and that
// fused supernode dispatches surface in the Chrome trace export.
func TestFusionJacobiConsistency(t *testing.T) {
	cfg := jacobi.Config{N: 24, Tol: 1e-2}
	ref := jacobi.Reference(cfg)
	for _, memplan := range []bool{false, true} {
		for _, workers := range fusionWorkers {
			c := cfg
			c.Fuse = true
			c.MemPlan = memplan
			s, eng, err := jacobi.Run(c, runtime.Config{Mode: runtime.Real, Workers: workers, Trace: workers == 1})
			if err != nil {
				t.Fatalf("memplan=%v workers=%d: %v", memplan, workers, err)
			}
			if !jacobi.Matches(s, ref) {
				t.Fatalf("memplan=%v workers=%d: fused solve diverged from reference (sweeps %d vs %d)",
					memplan, workers, s.Sweeps, ref.Sweeps)
			}
			if eng.Stats().FusedNodes == 0 {
				t.Errorf("memplan=%v workers=%d: no fused dispatches recorded", memplan, workers)
			}
			if tr := eng.Trace(); tr != nil {
				var buf bytes.Buffer
				if err := tr.WriteChrome(&buf); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(buf.String(), `"name":"fused x`) {
					t.Errorf("memplan=%v: trace export misses fused supernode markers", memplan)
				}
			}
		}
	}
}

// fusionFaultRegistry registers a fresh block producer and a destructive
// chain step, the shape that exercises fusion x memory plan x retry: the
// chain fuses into a supernode, vstep destroys its input (so retry needs
// the pristine snapshot), and an injected fault kills it mid-chain.
func fusionFaultRegistry() *operator.Registry {
	reg := operator.NewRegistry(operator.Builtins())
	reg.MustRegister(&operator.Operator{
		Name: "vinit", Arity: 0, Fresh: true, Retryable: true,
		Fn: func(ctx operator.Context, _ []value.Value) (value.Value, error) {
			return value.NewBlockStats(value.FloatVec{0}, ctx.BlockStats()), nil
		},
	})
	reg.MustRegister(&operator.Operator{
		Name: "vstep", Arity: 1, Destructive: []bool{true}, Retryable: true,
		Fn: func(ctx operator.Context, args []value.Value) (value.Value, error) {
			blk, ok := args[0].(*value.Block)
			if !ok {
				return nil, fmt.Errorf("vstep: block required, got %s", args[0].Kind())
			}
			v := blk.Data().(value.FloatVec)
			v[0] = v[0]*1.000001 + 1
			ctx.Charge(1)
			return args[0], nil
		},
	})
	return reg
}

const fusionFaultSrc = `
main(n)
  iterate
  {
    i = 0, incr(i)
    s = vinit(), vstep(vstep(vstep(s)))
  }
  while lt(i, n), result s
`

// chainResult extracts the accumulated float from the vchain program's
// block result. value.Equal on blocks is pointer identity (the engine's
// sole-reference discipline), so bit-identity is checked on the payload.
func chainResult(t *testing.T, v value.Value) float64 {
	t.Helper()
	blk, ok := v.(*value.Block)
	if !ok {
		t.Fatalf("expected block result, got %s", v.Kind())
	}
	vec, ok := blk.Data().(value.FloatVec)
	if !ok || len(vec) != 1 {
		t.Fatalf("unexpected payload %T", blk.Data())
	}
	return vec[0]
}

// TestFusionFaultRetryConsistency is the three-way composition test:
// fusion x memory plan x deterministic retry. A seeded fault plan kills
// vstep mid-supernode; retry must re-execute from the member's pristine
// snapshot and the final block must match the fault-free unfused result
// bit for bit at every worker count.
func TestFusionFaultRetryConsistency(t *testing.T) {
	reg := fusionFaultRegistry()
	res, err := compile.Compile("vchain.dlr", fusionFaultSrc, compile.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	eng := runtime.New(res.Program, runtime.Config{Mode: runtime.Real, Workers: 1})
	wantV, err := eng.Run(value.Int(20))
	if err != nil {
		t.Fatal(err)
	}
	want := chainResult(t, wantV)

	for _, memplan := range []bool{false, true} {
		copts := compile.Options{Registry: fusionFaultRegistry(), Fuse: true, MemPlan: memplan}
		fres, err := compile.Compile("vchain.dlr", fusionFaultSrc, copts)
		if err != nil {
			t.Fatalf("memplan=%v: %v", memplan, err)
		}
		if fres.FusePlan == nil || fres.FusePlan.Clusters == 0 {
			t.Fatalf("memplan=%v: vstep chain did not fuse", memplan)
		}
		for _, workers := range fusionWorkers {
			for seed := int64(1); seed <= 4; seed++ {
				e := runtime.New(fres.Program, runtime.Config{
					Mode:    runtime.Real,
					Workers: workers,
					Retry:   runtime.RetryPolicy{MaxAttempts: 4},
					Faults:  runtime.SeededFaultPlan(seed, []string{"vstep"}, 60),
				})
				got, err := e.Run(value.Int(20))
				if err != nil {
					t.Fatalf("memplan=%v workers=%d seed=%d: %v", memplan, workers, seed, err)
				}
				if gf := chainResult(t, got); gf != want {
					t.Errorf("memplan=%v workers=%d seed=%d: %v != fault-free unfused %v",
						memplan, workers, seed, gf, want)
				}
				if e.Stats().Retries == 0 && e.Stats().FaultsInjected > 0 {
					t.Errorf("memplan=%v workers=%d seed=%d: faults fired but nothing retried",
						memplan, workers, seed)
				}
			}
		}
	}
}

// TestFusedJacobiDotGolden pins the DOT rendering of the fused jacobi
// program: supernodes appear as nested dashed subgraphs and internal
// handoff edges render bold. Regenerate with
//
//	go test -run TestFusedJacobiDotGolden -update-dot
func TestFusedJacobiDotGolden(t *testing.T) {
	prog, err := jacobi.CompileProgram(jacobi.Config{Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	got := prog.Dot()
	const golden = "testdata/jacobi_fused.dot"
	if *updateDot {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("fused jacobi DOT drifted from %s; run with -update-dot to regenerate.\ngot:\n%s", golden, got)
	}
}
