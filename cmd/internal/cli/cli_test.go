package cli

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runtime"
	"repro/internal/value"
)

func TestRegistrySelection(t *testing.T) {
	for _, app := range []string{"", "builtins", "queens", "retina", "ray", "circuit"} {
		reg, err := Registry(app)
		if err != nil {
			t.Errorf("Registry(%q): %v", app, err)
			continue
		}
		if _, ok := reg.Lookup("incr"); !ok {
			t.Errorf("Registry(%q) missing builtins", app)
		}
	}
	appOps := map[string]string{
		"queens":  "add_queen",
		"retina":  "convol_bite",
		"ray":     "rt_trace",
		"circuit": "ckt_bite",
	}
	for app, op := range appOps {
		reg, _ := Registry(app)
		if _, ok := reg.Lookup(op); !ok {
			t.Errorf("Registry(%q) missing %s", app, op)
		}
	}
	if _, err := Registry("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestMachineSelection(t *testing.T) {
	names := map[string]string{
		"":            "Cray Y-MP",
		"cray":        "Cray Y-MP",
		"CRAY2":       "Cray-2",
		"sequent":     "Sequent Symmetry",
		"butterfly":   "BBN Butterfly T2000",
		"workstation": "workstation",
	}
	for in, want := range names {
		m, err := Machine(in)
		if err != nil {
			t.Errorf("Machine(%q): %v", in, err)
			continue
		}
		if m.Name != want {
			t.Errorf("Machine(%q) = %q, want %q", in, m.Name, want)
		}
	}
	if _, err := Machine("pdp11"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestAffinitySelection(t *testing.T) {
	cases := map[string]runtime.AffinityPolicy{
		"": runtime.AffinityNone, "none": runtime.AffinityNone,
		"operator": runtime.AffinityOperator, "op": runtime.AffinityOperator,
		"data": runtime.AffinityData,
	}
	for in, want := range cases {
		got, err := Affinity(in)
		if err != nil || got != want {
			t.Errorf("Affinity(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := Affinity("magnetic"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestParseArgs(t *testing.T) {
	got := ParseArgs([]string{"42", "-7", "2.5", "true", "false", "NULL", "hello"})
	want := []value.Value{
		value.Int(42), value.Int(-7), value.Float(2.5),
		value.Bool(true), value.Bool(false), value.Null{}, value.Str("hello"),
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if !value.Equal(got[i], want[i]) {
			t.Errorf("arg[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLoadSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.dlr")
	if err := os.WriteFile(path, []byte("main() 1"), 0o644); err != nil {
		t.Fatal(err)
	}
	name, src, err := LoadSource(path)
	if err != nil || name != path || src != "main() 1" {
		t.Errorf("LoadSource = %q, %q, %v", name, src, err)
	}
	if _, _, err := LoadSource(filepath.Join(dir, "missing.dlr")); err == nil {
		t.Error("missing file accepted")
	}
}
