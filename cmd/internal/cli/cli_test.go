package cli

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runtime"
	"repro/internal/value"
)

func TestRegistrySelection(t *testing.T) {
	for _, app := range []string{"", "builtins", "queens", "retina", "ray", "circuit"} {
		reg, err := Registry(app)
		if err != nil {
			t.Errorf("Registry(%q): %v", app, err)
			continue
		}
		if _, ok := reg.Lookup("incr"); !ok {
			t.Errorf("Registry(%q) missing builtins", app)
		}
	}
	appOps := map[string]string{
		"queens":  "add_queen",
		"retina":  "convol_bite",
		"ray":     "rt_trace",
		"circuit": "ckt_bite",
	}
	for app, op := range appOps {
		reg, _ := Registry(app)
		if _, ok := reg.Lookup(op); !ok {
			t.Errorf("Registry(%q) missing %s", app, op)
		}
	}
	if _, err := Registry("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestMachineSelection(t *testing.T) {
	names := map[string]string{
		"":            "Cray Y-MP",
		"cray":        "Cray Y-MP",
		"CRAY2":       "Cray-2",
		"sequent":     "Sequent Symmetry",
		"butterfly":   "BBN Butterfly T2000",
		"workstation": "workstation",
	}
	for in, want := range names {
		m, err := Machine(in)
		if err != nil {
			t.Errorf("Machine(%q): %v", in, err)
			continue
		}
		if m.Name != want {
			t.Errorf("Machine(%q) = %q, want %q", in, m.Name, want)
		}
	}
	if _, err := Machine("pdp11"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestAffinitySelection(t *testing.T) {
	cases := map[string]runtime.AffinityPolicy{
		"": runtime.AffinityNone, "none": runtime.AffinityNone,
		"operator": runtime.AffinityOperator, "op": runtime.AffinityOperator,
		"data": runtime.AffinityData,
	}
	for in, want := range cases {
		got, err := Affinity(in)
		if err != nil || got != want {
			t.Errorf("Affinity(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := Affinity("magnetic"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestParseArgs(t *testing.T) {
	got := ParseArgs([]string{"42", "-7", "2.5", "true", "false", "NULL", "hello"})
	want := []value.Value{
		value.Int(42), value.Int(-7), value.Float(2.5),
		value.Bool(true), value.Bool(false), value.Null{}, value.Str("hello"),
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if !value.Equal(got[i], want[i]) {
			t.Errorf("arg[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestProfileRoundTrip(t *testing.T) {
	prof := map[string]int64{"post_up": 4200, "convol_bite": 1050, "incr": 1}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if err := WriteProfile(a, prof); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prof) {
		t.Fatalf("round trip lost keys: %v", got)
	}
	for k, v := range prof {
		if got[k] != v {
			t.Errorf("%s = %d, want %d", k, got[k], v)
		}
	}
	// The file must be byte-deterministic regardless of map iteration order:
	// the adaptive loop's convergence test compares profiles textually.
	if err := WriteProfile(b, got); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Errorf("WriteProfile not deterministic:\n%s\nvs\n%s", da, db)
	}
}

func TestMeanWeight(t *testing.T) {
	cases := []struct {
		total int64
		calls int
		want  int64
	}{
		{0, 0, 0},    // no calls: no weight, and crucially no divide
		{100, 0, 0},  // ditto with a nonzero total
		{100, 4, 25}, // exact mean
		{10, 4, 3},   // rounds to nearest (2.5 → 3)
		{1, 4, 1},    // sub-unit means floor at 1, never truncate to 0
		{0, 4, 1},    // zero total still yields a positive weight
	}
	for _, c := range cases {
		if got := MeanWeight(c.total, c.calls); got != c.want {
			t.Errorf("MeanWeight(%d, %d) = %d, want %d", c.total, c.calls, got, c.want)
		}
	}
}

func TestLoadSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.dlr")
	if err := os.WriteFile(path, []byte("main() 1"), 0o644); err != nil {
		t.Fatal(err)
	}
	name, src, err := LoadSource(path)
	if err != nil || name != path || src != "main() 1" {
		t.Errorf("LoadSource = %q, %q, %v", name, src, err)
	}
	if _, _, err := LoadSource(filepath.Join(dir, "missing.dlr")); err == nil {
		t.Error("missing file accepted")
	}
}
