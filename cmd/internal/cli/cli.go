// Package cli holds the flag plumbing shared by the delirium, delc, and
// delprof commands: source loading, operator-registry selection, machine
// profiles, and argument parsing.
package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/machine"
	"repro/internal/operator"
	"repro/internal/queens"
	"repro/internal/ray"
	"repro/internal/retina"
	"repro/internal/runtime"
	"repro/internal/stress"
	"repro/internal/value"
)

// LoadSource reads a program from a file path, or stdin for "-".
func LoadSource(path string) (name, src string, err error) {
	if path == "-" {
		data := make([]byte, 0, 4096)
		buf := make([]byte, 4096)
		for {
			n, rerr := os.Stdin.Read(buf)
			data = append(data, buf[:n]...)
			if rerr != nil {
				break
			}
		}
		return "<stdin>", string(data), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	return path, string(data), nil
}

// Registry returns the operator registry named by -app: "" or "builtins"
// for the standard library alone, or one of the bundled applications whose
// operators a .dlr program may call.
func Registry(app string) (*operator.Registry, error) {
	switch app {
	case "", "builtins":
		return operator.Builtins(), nil
	case "queens":
		return queens.Operators(), nil
	case "retina":
		return retina.Operators(retina.DefaultConfig())
	case "ray":
		return ray.Operators(ray.DefaultConfig())
	case "circuit":
		return circuit.Operators(circuit.DefaultConfig())
	case "stress":
		return stress.Operators(), nil
	default:
		return nil, fmt.Errorf("unknown -app %q (want builtins, queens, retina, ray, circuit, or stress)", app)
	}
}

// LoadProfile reads an operator-weight profile — a JSON object mapping
// operator names to mean costs — as written by delprof -profout. The
// weights seed the fusion pass's critical-path priorities.
func LoadProfile(path string) (map[string]int64, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prof map[string]int64
	if err := json.Unmarshal(data, &prof); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return prof, nil
}

// WriteProfile writes an operator-weight profile with sorted keys so
// repeated profiling runs diff cleanly.
func WriteProfile(path string, prof map[string]int64) error {
	names := make([]string, 0, len(prof))
	for n := range prof {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		sep := ","
		if i == len(names)-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "  %q: %d%s\n", n, prof[n], sep)
	}
	b.WriteString("}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// MeanWeight computes a profile weight from a timing summary: the mean cost
// rounded half-up, floored at 1 so a sub-unit mean never truncates to a
// "free" operator, and 0 for zero-call summaries (possible when a faulted or
// budget-aborted run recorded an operator name with no completed calls) —
// callers drop zero entries instead of dividing by zero.
func MeanWeight(total int64, calls int) int64 {
	if calls <= 0 {
		return 0
	}
	w := (total + int64(calls)/2) / int64(calls)
	if w < 1 {
		w = 1
	}
	return w
}

// Machine resolves a -machine name to a profile.
func Machine(name string) (*machine.Profile, error) {
	switch strings.ToLower(name) {
	case "", "cray", "ymp", "cray-ymp":
		return machine.CrayYMP(), nil
	case "cray2", "cray-2":
		return machine.Cray2(), nil
	case "sequent":
		return machine.Sequent(), nil
	case "butterfly":
		return machine.Butterfly(), nil
	case "workstation", "uni":
		return machine.Uniprocessor(), nil
	default:
		return nil, fmt.Errorf("unknown -machine %q (want cray, cray2, sequent, butterfly, workstation)", name)
	}
}

// Affinity resolves a -affinity name to a policy.
func Affinity(name string) (runtime.AffinityPolicy, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return runtime.AffinityNone, nil
	case "operator", "op":
		return runtime.AffinityOperator, nil
	case "data":
		return runtime.AffinityData, nil
	default:
		return 0, fmt.Errorf("unknown -affinity %q (want none, operator, data)", name)
	}
}

// ParseArgs converts command-line strings to main's argument values:
// integers, floats, the literals true/false/NULL, and strings otherwise.
func ParseArgs(raw []string) []value.Value {
	out := make([]value.Value, len(raw))
	for i, s := range raw {
		switch {
		case s == "true":
			out[i] = value.Bool(true)
		case s == "false":
			out[i] = value.Bool(false)
		case s == "NULL":
			out[i] = value.Null{}
		default:
			if n, err := strconv.ParseInt(s, 10, 64); err == nil {
				out[i] = value.Int(n)
				continue
			}
			if f, err := strconv.ParseFloat(s, 64); err == nil {
				out[i] = value.Float(f)
				continue
			}
			out[i] = value.Str(s)
		}
	}
	return out
}
