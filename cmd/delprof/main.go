// Command delprof is the node timing profiler of §5.2: it runs a program
// with individual node timing turned on and prints the per-invocation
// listing ("call of convol_bite took 1059919") followed by a per-operator
// summary sorted by total time — the tool the paper's authors used to find
// and fix load imbalance in under a day.
//
//	delprof -app queens queens.dlr
//	delprof -sim -machine cray program.dlr     deterministic virtual ticks
//	delprof -top 5 program.dlr                 summary only, five rows
//	delprof -trace out.json program.dlr        Chrome/Perfetto trace export
//	delprof -critpath program.dlr              critical-path analysis
//	delprof -profout weights.json program.dlr  write mean operator costs as JSON
//	delprof -fuse -profile weights.json ...    run fused, priorities from a profile
//	delprof -runs 200 program.dlr              throughput mode: 200 runs on one reused engine
//	delprof -adaptive program.dlr              calibrate -> re-fuse -> re-run, keep the winner
//	delprof -affinity -steals program.dlr      affinity plan + per-worker steal/park report
//
// -trace writes the structured execution trace in Chrome trace-event JSON
// (load it at ui.perfetto.dev): one track per worker, a slice per node
// execution, flow arrows along data dependencies, and instants for steals,
// parks, and activation traffic. -critpath replays the recorded node times
// over the dependency edges and reports the longest weighted chain,
// per-operator slack, and an imbalance verdict — the §5.2 workflow made
// mechanical.
package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/adapt"
	"repro/internal/compile"
	"repro/internal/runtime"
)

func main() {
	var (
		workers  = flag.Int("workers", goruntime.NumCPU(), "processors")
		sim      = flag.Bool("sim", true, "use the simulated executor (deterministic ticks)")
		machName = flag.String("machine", "cray", "simulated machine profile")
		app      = flag.String("app", "builtins", "operator registry")
		top      = flag.Int("top", 0, "print only the top-N summary rows (0 = listing + full summary)")
		filter   = flag.String("ops", "", "comma-separated operator names to list (empty = all)")
		gantt    = flag.Int("gantt", 0, "render a per-processor timeline this many cells wide")
		traceOut = flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON file here")
		critpath = flag.Bool("critpath", false, "print critical-path analysis and imbalance verdict")
		memplan  = flag.Bool("memplan", false, "compile with the memory plan and report elision/pool counters")
		fuse     = flag.Bool("fuse", false, "compile with operator fusion and report supernode counters")
		profile  = flag.String("profile", "", "JSON operator-weight profile seeding fusion priorities")
		profout  = flag.String("profout", "", "write the measured mean operator costs as a JSON profile here")
		runs     = flag.Int("runs", 1, "execute the program this many times on one reused engine (throughput mode); listings describe the last run")
		adaptive = flag.Bool("adaptive", false, "run the adaptive loop: calibrate with timing on, re-fuse and re-plan with measured weights, re-run, keep the winning plan (implies -fuse -memplan)")
		affinity = flag.Bool("affinity", false, "compile the affinity plan and run with locality hints on (implies -fuse); prints the plan and hit/miss counters")
		steals   = flag.Bool("steals", false, "print the per-worker steal/park/affinity report (enables tracing)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: delprof [flags] program.dlr [args...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	name, src, err := cli.LoadSource(flag.Arg(0))
	fail(err)
	reg, err := cli.Registry(*app)
	fail(err)
	mach, err := cli.Machine(*machName)
	fail(err)

	prof, err := cli.LoadProfile(*profile)
	fail(err)

	mode := runtime.Real
	unit := "ns"
	if *sim {
		mode = runtime.Simulated
		unit = "ticks"
	}

	if *adaptive {
		measure := 0
		if *runs > 1 {
			measure = *runs
		}
		tres, err := adapt.Tune(nil, name, src, adapt.Config{
			Compile:     compile.Options{Registry: reg, MemPlan: true, Adaptive: true, FuseProfile: prof, Affinity: *affinity},
			Runtime:     runtime.Config{Mode: mode, Workers: *workers, Machine: mach, AffinityHints: *affinity},
			Args:        cli.ParseArgs(flag.Args()[1:]),
			MeasureRuns: measure,
		})
		fail(err)
		fmt.Print(tres.Report())
		for _, w := range tres.Winning().Warnings {
			fmt.Fprintf(os.Stderr, "warning: %s\n", w)
		}
		if *profout != "" {
			fail(cli.WriteProfile(*profout, tres.Profile))
			fmt.Fprintf(os.Stderr, "profile: wrote %d operator weights to %s (feed back via -profile)\n",
				len(tres.Profile), *profout)
		}
		return
	}

	res, err := compile.Compile(name, src, compile.Options{
		Registry: reg, MemPlan: *memplan, Fuse: *fuse, FuseProfile: prof, Affinity: *affinity})
	fail(err)
	for _, w := range res.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
	eng := runtime.New(res.Program, runtime.Config{
		Mode: mode, Workers: *workers, Machine: mach, Timing: true,
		AffinityHints: *affinity,
		Trace:         *traceOut != "" || *critpath || *steals})
	args := cli.ParseArgs(flag.Args()[1:])
	// Throughput mode: re-run the same program on the same engine, Reset
	// between runs, so the warmed activation pools, block free lists, and
	// scheduler serve every run after the first. The timing log, trace, and
	// counters below describe the final run.
	wall := time.Now()
	out, err := eng.Run(args...)
	fail(err)
	for r := 1; r < *runs; r++ {
		fail(eng.Reset())
		out, err = eng.Run(args...)
		fail(err)
	}
	if *runs > 1 {
		elapsed := time.Since(wall)
		fmt.Fprintf(os.Stderr, "throughput: %d runs on one engine in %v (%.0f runs/sec, %v/run)\n",
			*runs, elapsed.Round(time.Microsecond),
			float64(*runs)/elapsed.Seconds(), (elapsed / time.Duration(*runs)).Round(time.Microsecond))
	}
	fmt.Fprintf(os.Stderr, "result: %v\n\n", out)

	log := eng.Timing()
	if *top == 0 {
		var names map[string]bool
		if *filter != "" {
			names = make(map[string]bool)
			start := 0
			for i := 0; i <= len(*filter); i++ {
				if i == len(*filter) || (*filter)[i] == ',' {
					if i > start {
						names[(*filter)[start:i]] = true
					}
					start = i + 1
				}
			}
		}
		fmt.Print(log.Listing(names))
		fmt.Println()
	}

	if *gantt > 0 {
		fmt.Println(log.Gantt(*gantt))
		loads := log.ProcLoads()
		for p, l := range loads {
			fmt.Printf("proc %2d busy %d %s\n", p, l, unit)
		}
		fmt.Println()
	}

	fmt.Printf("%-20s %8s %14s %14s %14s\n", "operator", "calls", "total "+unit, "mean "+unit, "max "+unit)
	rows := log.Summarize()
	if *top > 0 && *top < len(rows) {
		rows = rows[:*top]
	}
	for _, s := range rows {
		fmt.Printf("%-20s %8d %14d %14d %14d\n",
			s.Name, s.Calls, s.Total, cli.MeanWeight(s.Total, s.Calls), s.Max)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fail(err)
		err = eng.Trace().WriteChrome(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fail(err)
		fmt.Fprintf(os.Stderr, "trace: wrote %s (load at ui.perfetto.dev)\n", *traceOut)
	}
	if *critpath {
		fmt.Println()
		if cp := eng.Trace().CriticalPath(); cp != nil {
			fmt.Print(cp.Report())
			fmt.Print(runtime.RenderAdvisories(cp.Advise(*workers)))
		} else {
			fmt.Println("critical path: no completed node executions recorded")
		}
	}
	if *steals {
		fmt.Println()
		fmt.Print(eng.Trace().SchedReport().Render())
	}
	if *affinity {
		st := eng.Stats()
		fmt.Printf("\n%s", res.AffinityPlan.Report())
		fmt.Printf("affinity dispatch: %d hits / %d misses, %d batched steals moving %d tasks\n",
			st.AffinityHits, st.AffinityMisses, st.BatchSteals, st.BatchStolenTasks)
	}
	if *memplan {
		st := eng.Stats()
		fmt.Printf("\nmemory plan: %d retains + %d releases elided, %d pooled allocations, %d in-place updates proven (copies: %d)\n",
			st.ElidedRetains, st.ElidedReleases, st.PooledAllocs, st.CopiesAvoided, st.Blocks.Copies)
	}
	if *fuse {
		st := eng.Stats()
		fmt.Printf("\nfusion: %d supernode clusters compiled, %d nodes ran fused, %d dispatches saved\n",
			res.FusePlan.Clusters, st.FusedNodes, st.FusedDispatchesSaved)
	}
	if *profout != "" {
		// ProfileWeights (not the summary table): it normalizes the dispatch
		// charge out of unfused Simulated entries so fused and unfused runs
		// measure the same per-operator costs, rounds rather than truncates,
		// and never emits a zero weight.
		weights := eng.ProfileWeights()
		for name, w := range weights {
			if w <= 0 {
				delete(weights, name)
			}
		}
		fail(cli.WriteProfile(*profout, weights))
		fmt.Fprintf(os.Stderr, "profile: wrote %d operator weights to %s (feed back via -profile)\n",
			len(weights), *profout)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "delprof:", err)
		os.Exit(1)
	}
}
