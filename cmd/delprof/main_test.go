package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles this command into dir and returns the binary path.
// Shared by the delx smoke test via the same helper shape.
func buildCmd(t *testing.T, dir, pkg string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not in PATH")
	}
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestDelprofSmoke builds the profiler and runs it end to end on the
// eight-queens program with tracing and critical-path analysis on, checking
// exit status, the summary table, the verdict line, and that the trace file
// is valid Chrome trace-event JSON.
func TestDelprofSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "./cmd/delprof")
	traceFile := filepath.Join(dir, "out.json")

	cmd := exec.Command(bin, "-sim", "-app", "queens", "-top", "5",
		"-trace", traceFile, "-critpath", "programs/queens8.dlr")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("delprof failed: %v\n%s", err, out)
	}
	for _, want := range []string{"result:", "operator", "critical path:", "verdict:", "trace: wrote"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}

// TestDelprofAdaptive runs the closed loop end to end on the unbalanced
// retina model: -adaptive must complete unattended, report the
// baseline-vs-tuned comparison, name post_up in a granularity advisory, and
// write a loadable profile.
func TestDelprofAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "./cmd/delprof")
	profFile := filepath.Join(dir, "prof.json")

	cmd := exec.Command(bin, "-sim", "-app", "retina", "-adaptive",
		"-workers", "8", "-profout", profFile, "programs/retina1.dlr")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("delprof -adaptive failed: %v\n%s", err, out)
	}
	for _, want := range []string{"adaptive: calibrated", "keeping tuned plan",
		"advisory:", "post_up"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(profFile)
	if err != nil {
		t.Fatalf("profile file: %v", err)
	}
	var prof map[string]int64
	if err := json.Unmarshal(data, &prof); err != nil {
		t.Fatalf("profile is not valid JSON: %v\n%s", err, data)
	}
	if prof["post_up"] < 1 || prof["convol_bite"] < 1 {
		t.Errorf("profile missing measured operators: %v", prof)
	}
}

// TestDelprofUsage checks the no-argument error path exits 2 with usage.
func TestDelprofUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, t.TempDir(), "./cmd/delprof")
	cmd := exec.Command(bin)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "usage: delprof") {
		t.Errorf("missing usage:\n%s", out)
	}
}
