// Command benchjson converts `go test -bench` text output into a stable
// JSON document for CI artifacts, and can enforce a relative speedup
// between two benchmarks — the fusion gate's "fused dispatch must beat
// the unfused chain by N%" check.
//
//	go test -bench Dispatch . | benchjson -o BENCH.json
//	benchjson -faster DispatchFused:DispatchChain:25 < bench.txt
//
// -faster may repeat to gate several pairs in one pass; a negative pct
// is a noise tolerance ("A must not be more than pct% slower than B").
// An optional fourth field names the metric to compare (default ns/op) —
// gating a deterministic custom metric (a virtual-clock makespan) keeps
// the check meaningful on runners whose wall clock is too noisy or whose
// core count hides the effect.
//
// Repeated runs of the same benchmark (-count > 1) are folded by taking
// the minimum of each metric: the best observed run is the least noisy
// estimate of the true cost.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark's folded metrics keyed by unit (ns/op,
// allocs/op, custom ReportMetric units, ...).
type result struct {
	iterations int64
	metrics    map[string]float64
}

// procSuffix strips the trailing GOMAXPROCS marker go test appends to
// benchmark names (Foo-8 -> Foo).
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "write JSON here (default stdout)")
	var faster gateList
	flag.Var(&faster, "faster",
		"A:B:pct — fail unless benchmark A's ns/op is at least pct%% below B's (repeatable)")
	flag.Parse()

	results, order := parse(os.Stdin)
	if len(order) == 0 {
		fail(fmt.Errorf("no benchmark lines on stdin"))
	}

	var b strings.Builder
	b.WriteString("{\n  \"benchmarks\": [\n")
	for i, name := range order {
		r := results[name]
		units := make([]string, 0, len(r.metrics))
		for u := range r.metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		fmt.Fprintf(&b, "    {\"name\": %q, \"iterations\": %d, \"metrics\": {", name, r.iterations)
		for j, u := range units {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q: %g", u, r.metrics[u])
		}
		b.WriteString("}}")
		if i < len(order)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  ]\n}\n")

	if *out == "" {
		fmt.Print(b.String())
	} else {
		fail(os.WriteFile(*out, []byte(b.String()), 0o644))
	}

	for _, spec := range faster {
		fail(check(spec, results))
	}
}

// gateList collects repeated -faster flags.
type gateList []string

func (g *gateList) String() string     { return strings.Join(*g, ",") }
func (g *gateList) Set(s string) error { *g = append(*g, s); return nil }

// parse reads go-test bench lines ("BenchmarkFoo-8  100  123 ns/op  4 B/op")
// and folds repeats by per-metric minimum, preserving first-seen order.
func parse(f *os.File) (map[string]*result, []string) {
	results := make(map[string]*result)
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := procSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")
		r := results[name]
		if r == nil {
			r = &result{metrics: make(map[string]float64)}
			results[name] = r
			order = append(order, name)
		}
		r.iterations += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if prev, ok := r.metrics[unit]; !ok || v < prev {
				r.metrics[unit] = v
			}
		}
	}
	return results, order
}

// check enforces an A:B:pct[:metric] speedup claim on the folded metrics
// (ns/op unless a metric is named).
func check(spec string, results map[string]*result) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return fmt.Errorf("-faster wants A:B:pct[:metric], got %q", spec)
	}
	minPct, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("-faster percentage %q: %v", parts[2], err)
	}
	metric := "ns/op"
	if len(parts) == 4 {
		metric = parts[3]
	}
	var ns [2]float64
	for i, name := range parts[:2] {
		r := results[name]
		if r == nil {
			return fmt.Errorf("-faster: benchmark %q not in input", name)
		}
		v, ok := r.metrics[metric]
		if !ok {
			return fmt.Errorf("-faster: benchmark %q has no %s metric", name, metric)
		}
		ns[i] = v
	}
	gain := (ns[1] - ns[0]) / ns[1] * 100
	fmt.Fprintf(os.Stderr, "benchjson: %s %.1f %s vs %s %.1f %s: %.1f%% faster (need %.0f%%)\n",
		parts[0], ns[0], metric, parts[1], ns[1], metric, gain, minPct)
	if gain < minPct {
		return fmt.Errorf("%s is only %.1f%% faster than %s on %s, need %.0f%%", parts[0], gain, parts[1], metric, minPct)
	}
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
