package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDelx compiles the command into dir and returns the binary path.
func buildDelx(t *testing.T, dir string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not in PATH")
	}
	bin := filepath.Join(dir, "delx")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/delx")
	cmd.Dir = delxRepoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func delxRepoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestDelxSmoke builds the experiment driver and runs the cheap experiments
// end to end: the queens determinism check and the two §5.2 listings with
// their new critical-path footers.
func TestDelxSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildDelx(t, t.TempDir())

	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("delx -list: %v\n%s", err, out)
	}
	for _, id := range []string{"fig1", "lst1", "lst2", "queens"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %q:\n%s", id, out)
		}
	}

	out, err = exec.Command(bin, "queens", "lst1", "lst2").CombinedOutput()
	if err != nil {
		t.Fatalf("delx queens lst1 lst2: %v\n%s", err, out)
	}
	for _, want := range []string{
		"92 solutions",
		"call of post_up took",
		"verdict: imbalanced — post_up",
		"verdict: balanced",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestDelxUnknownExperiment checks the error path exits nonzero.
func TestDelxUnknownExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildDelx(t, t.TempDir())
	out, err := exec.Command(bin, "no-such-experiment").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown experiment exited 0:\n%s", out)
	}
}
