package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/server"
)

// runCall implements `delx call`: drive a running delserver from the CLI
// with concurrent runs, client-side retry honoring Retry-After, and a
// latency summary. With -bench it emits a benchjson-compatible line so CI
// can fold the measurement into BENCH_server.json.
//
//	delx call -addr http://127.0.0.1:8080 -n 120 -c 8 queens6
//	delx call -args '[3, 4]' myprog
func runCall(args []string) int {
	fs := flag.NewFlagSet("delx call", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL")
	n := fs.Int("n", 1, "total runs to submit")
	c := fs.Int("c", 1, "concurrent submitters")
	argsJSON := fs.String("args", "", "JSON array of run arguments")
	timeout := fs.Duration("timeout", 0, "per-run deadline sent to the server (0 = server default)")
	attempts := fs.Int("attempts", 8, "max attempts per run (retries on 429/503 with backoff + jitter)")
	bench := fs.Bool("bench", false, "emit a benchjson-compatible Benchmark line")
	verbose := fs.Bool("v", false, "print each run's result")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "delx call: exactly one program name required")
		return 2
	}
	prog := fs.Arg(0)

	req := server.RunRequest{TimeoutMS: timeout.Milliseconds()}
	if *argsJSON != "" {
		if err := json.Unmarshal([]byte(*argsJSON), &req.Args); err != nil {
			fmt.Fprintf(os.Stderr, "delx call: -args must be a JSON array: %v\n", err)
			return 2
		}
	}

	client := &server.Client{Base: *addr, MaxAttempts: *attempts}
	if *c < 1 {
		*c = 1
	}
	type outcome struct {
		latency time.Duration
		retries int
		err     error
		body    any
	}
	results := make([]outcome, *n)
	work := make(chan int)
	done := make(chan struct{})
	for w := 0; w < *c; w++ {
		go func() {
			for i := range work {
				start := time.Now()
				res, err := client.Call(context.Background(), prog, req)
				o := outcome{latency: time.Since(start), err: err}
				if res != nil {
					o.retries = res.Attempts - 1
					o.body = res.Resp.Result
				}
				results[i] = o
				done <- struct{}{}
			}
		}()
	}
	wall := time.Now()
	go func() {
		for i := 0; i < *n; i++ {
			work <- i
		}
		close(work)
	}()
	for i := 0; i < *n; i++ {
		<-done
	}
	elapsed := time.Since(wall)

	ok, failed, retried := 0, 0, 0
	lats := make([]time.Duration, 0, *n)
	for i, o := range results {
		if o.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "delx call: run %d: %v\n", i, o.err)
			continue
		}
		ok++
		retried += o.retries
		lats = append(lats, o.latency)
		if *verbose {
			body, _ := json.Marshal(o.body)
			fmt.Printf("run %d: %s (%.2fms, %d retries)\n", i, body, o.latency.Seconds()*1e3, o.retries)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	runsPerSec := float64(ok) / elapsed.Seconds()
	fmt.Printf("%s: %d ok, %d failed, %d client retries in %.2fs (%.1f runs/s, p50 %.2fms, p99 %.2fms)\n",
		prog, ok, failed, retried, elapsed.Seconds(), runsPerSec,
		pct(0.50).Seconds()*1e3, pct(0.99).Seconds()*1e3)
	if *bench && ok > 0 {
		// benchjson format: Benchmark<name><ws>iters<ws>value unit pairs.
		fmt.Printf("BenchmarkServer_%s\t%d\t%d ns/op\t%.1f runs/s\t%d p50-ns/op\t%d p99-ns/op\n",
			prog, ok, elapsed.Nanoseconds()/int64(ok), runsPerSec,
			pct(0.50).Nanoseconds(), pct(0.99).Nanoseconds())
	}
	if failed > 0 {
		return 1
	}
	return 0
}
