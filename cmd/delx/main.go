// Command delx regenerates the paper's evaluation: every table and figure,
// plus the ablations DESIGN.md calls out. Run with no arguments for the
// full suite, or name experiments:
//
//	delx                  run everything
//	delx fig1 tab1        run selected experiments
//	delx -list            list experiment ids
//
// Experiments: fig1, tab1, tab1wall, tab2, lst1, lst2, ovh, prio, aff,
// mem, opt, walks, queens, faults, thru, stress, serve, tune.
//
// `delx call` is a subcommand, not an experiment: it drives a running
// delserver over HTTP with concurrent runs and retrying backoff
// (see delx call -h).
//
// The faults experiment takes -retries (retry attempts per operator) and
// -timeout (per-operator execution bound; 0 for none). The stress
// experiment takes -seeds (random programs pushed through the full
// differential oracle matrix).
package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/retina"
)

type experiment struct {
	id   string
	desc string
	run  func() (string, error)
}

func all(opTimeout time.Duration, retries, seeds int) []experiment {
	return []experiment{
		{"fig1", "Figure 1: retina speedup, simulated Cray Y-MP, 1-4 procs",
			experiments.Fig1Text},
		{"tab1", "Table 1: the compiler compiled in Delirium, simulated Sequent, n=3",
			func() (string, error) { return experiments.Table1Text(240, 3) }},
		{"tab1wall", "Table 1 (wall-clock variant on this host's cores)",
			func() (string, error) {
				w := goruntime.NumCPU()
				if w > 3 {
					w = 3
				}
				return experiments.Table1WallText(600, w, 3)
			}},
		{"tab2", "Table 2: coordination model comparison",
			func() (string, error) { return experiments.Table2Text(), nil }},
		{"lst1", "§5.2 node-timing listing, unbalanced retina (post_up dominates)",
			func() (string, error) { return experiments.Listing(retina.V1) }},
		{"lst2", "§5.2 node-timing listing, balanced retina",
			func() (string, error) { return experiments.Listing(retina.V2) }},
		{"ovh", "§7 runtime overhead on the retina model",
			experiments.OverheadText},
		{"prio", "§7 priority-scheme ablation (peak live activations, 7-queens)",
			func() (string, error) { return experiments.PriorityText(7) }},
		{"aff", "§9.3 affinity ablation, Butterfly (NUMA) vs Cray (UMA)",
			experiments.AffinityText},
		{"mem", "§7 memory split: templates vs activations",
			experiments.MemoryText},
		{"opt", "§6.1 optimizer ablation: graph nodes vs runtime overhead",
			func() (string, error) { return experiments.OptAblationText(120) }},
		{"walks", "§6.2 parallel tree-walk scaling (wall-clock)",
			func() (string, error) {
				return experiments.WalksText(400000, []int{1, 2, 4}, 3), nil
			}},
		{"queens", "§3 eight queens: 92 solutions, deterministic order",
			experiments.QueensText},
		{"faults", "fault tolerance: every retina operator killed once, output identical",
			func() (string, error) { return experiments.FaultsText(opTimeout, retries) }},
		{"thru", "throughput mode: reused engine (RunMany) vs fresh engine per run",
			func() (string, error) { return experiments.ThroughputText(200) }},
		{"stress", "differential stress: random graphs through the cross-executor oracle matrix",
			func() (string, error) { return experiments.StressText(seeds) }},
		{"serve", "coordination server: registry, overload shedding, chaos, graceful drain",
			func() (string, error) { return experiments.ServeText(60) }},
		{"tune", "adaptive loop: calibrate, re-fuse with measured weights, keep the winner",
			experiments.TuneText},
	}
}

func main() {
	// `delx call` is a subcommand with its own flags (it drives a running
	// delserver rather than an in-process experiment); intercept it before
	// the experiment flag set parses.
	if len(os.Args) > 1 && os.Args[1] == "call" {
		os.Exit(runCall(os.Args[2:]))
	}
	list := flag.Bool("list", false, "list experiment ids and exit")
	opTimeout := flag.Duration("timeout", 0, "per-operator execution bound for the faults experiment (0 = none)")
	retries := flag.Int("retries", 3, "retry attempts per operator for the faults experiment")
	seeds := flag.Int("seeds", 25, "random programs for the stress experiment")
	flag.Parse()

	exps := all(*opTimeout, *retries, *seeds)
	if *list {
		for _, e := range exps {
			fmt.Printf("%-9s %s\n", e.id, e.desc)
		}
		return
	}

	selected := exps
	if flag.NArg() > 0 {
		byID := make(map[string]experiment, len(exps))
		for _, e := range exps {
			byID[e.id] = e
		}
		selected = selected[:0]
		for _, id := range flag.Args() {
			e, ok := byID[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "delx: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.desc)
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "delx: %s failed: %v\n", e.id, err)
			failed++
			continue
		}
		fmt.Print(out)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
