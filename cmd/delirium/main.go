// Command delirium compiles and executes a Delirium coordination program —
// the environment's driver. Programs resolve operators from the builtin
// library plus, with -app, one of the bundled application registries.
//
//	delirium program.dlr                     run on all cores
//	delirium -workers 4 program.dlr 3 5      run with arguments
//	delirium -sim -machine cray program.dlr  deterministic simulated run
//	delirium -app queens queens.dlr          run with application operators
//	delirium -fuse program.dlr               supernode (fused) dispatch
//	delirium -e 'add(2, mul(5, 8))'          evaluate one expression
package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"

	delirium "repro"
	"repro/cmd/internal/cli"
	"repro/internal/compile"
	"repro/internal/runtime"
)

func main() {
	var (
		workers  = flag.Int("workers", goruntime.NumCPU(), "processors (goroutines or simulated)")
		sim      = flag.Bool("sim", false, "use the deterministic simulated executor")
		machName = flag.String("machine", "cray", "simulated machine: cray, cray2, sequent, butterfly, workstation")
		app      = flag.String("app", "builtins", "operator registry: builtins, queens, retina, ray, circuit")
		optLevel = flag.Int("O", 2, "optimization level (-1 none, 1 local, 2 full)")
		cworkers = flag.Int("cworkers", 1, "compiler workers (>1 uses the parallel compiler)")
		timing   = flag.Bool("timing", false, "print node timings after the run")
		affName  = flag.String("affinity", "none", "simulated affinity policy: none, operator, data")
		stats    = flag.Bool("stats", false, "print execution statistics")
		nopri    = flag.Bool("no-priorities", false, "replace the 3-level ready queue with a FIFO")
		fuse     = flag.Bool("fuse", false, "compile with operator fusion (supernode dispatch)")
		expr     = flag.String("e", "", "evaluate a single expression (builtins + prelude) and exit")
	)
	flag.Parse()
	if *expr != "" {
		v, err := delirium.Eval(*expr)
		fail(err)
		fmt.Println(v)
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: delirium [flags] program.dlr [args...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	name, src, err := cli.LoadSource(flag.Arg(0))
	fail(err)
	reg, err := cli.Registry(*app)
	fail(err)
	mach, err := cli.Machine(*machName)
	fail(err)
	aff, err := cli.Affinity(*affName)
	fail(err)

	res, err := compile.Compile(name, src, compile.Options{
		Registry: reg, OptLevel: *optLevel, Workers: *cworkers, Fuse: *fuse})
	fail(err)

	mode := runtime.Real
	if *sim {
		mode = runtime.Simulated
	}
	eng := runtime.New(res.Program, runtime.Config{
		Mode: mode, Workers: *workers, Machine: mach,
		Timing: *timing, Affinity: aff, DisablePriorities: *nopri,
	})
	out, err := eng.Run(cli.ParseArgs(flag.Args()[1:])...)
	fail(err)
	fmt.Println(out)

	if *stats {
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "stats: %s\n", st)
		if *sim {
			fmt.Fprintf(os.Stderr, "virtual: makespan=%d ticks busy=%d overhead=%.2f%% utilization=%.1f%%\n",
				st.MakespanTicks, st.BusyTicks, st.OverheadFraction()*100, st.Utilization()*100)
		}
	}
	if *timing && eng.Timing() != nil {
		fmt.Fprint(os.Stderr, eng.Timing().Listing(nil))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "delirium:", err)
		os.Exit(1)
	}
}
