// Command delserver runs the Delirium coordination service: registered
// programs compile once and serve many runs over an HTTP/JSON API from
// pools of reusable engines, behind bounded admission with load shedding,
// per-run deadlines and operator budgets, Prometheus-style metrics, and
// graceful drain on SIGINT/SIGTERM.
//
//	delserver -addr :8080 -programs jacobi,queens6
//
// Endpoints: GET /healthz, GET /readyz, GET /metrics, GET /programs,
// POST /programs, POST /run/{name}. See docs/SERVER.md for the API.
//
// The process exits 0 after a clean drain; it exits 1 if any run violated
// the Allocated==Freed block invariant — leaks are a deploy-blocking
// failure, not a log line.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

type options struct {
	addr          string
	programs      string
	workers       int
	maxConcurrent int
	queueDepth    int
	timeout       time.Duration
	maxTimeout    time.Duration
	maxOps        int64
	drainTimeout  time.Duration
	poolIdle      int
	chaosSeed     int64
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("delserver", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.programs, "programs", "jacobi,queens6",
		"comma-separated catalog workloads to register at startup (jacobi, jacobiN, queensN)")
	fs.IntVar(&o.workers, "workers", 2, "worker goroutines per engine")
	fs.IntVar(&o.maxConcurrent, "max-concurrent", 4, "runs executing simultaneously")
	fs.IntVar(&o.queueDepth, "queue", 8, "admission queue depth beyond in-flight; overflow sheds 429")
	fs.DurationVar(&o.timeout, "timeout", 10*time.Second, "default per-run deadline")
	fs.DurationVar(&o.maxTimeout, "max-timeout", 60*time.Second, "clamp on requested per-run deadlines")
	fs.Int64Var(&o.maxOps, "max-ops", 100_000_000, "default per-run operator budget")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 5*time.Second,
		"graceful-shutdown budget before in-flight runs are canceled")
	fs.IntVar(&o.poolIdle, "pool-idle", 0, "idle engines retained per program (0 = max-concurrent)")
	fs.Int64Var(&o.chaosSeed, "chaos", 0,
		"non-zero seeds fault injection + retry on chaos-capable programs (the queens family)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return o, nil
}

// buildServer constructs and populates the server from options — split
// from main so tests drive the exact wiring the daemon runs.
func buildServer(o *options) (*server.Server, error) {
	s := server.New(server.Config{
		MaxConcurrent:  o.maxConcurrent,
		QueueDepth:     o.queueDepth,
		DefaultTimeout: o.timeout,
		MaxTimeout:     o.maxTimeout,
		DefaultMaxOps:  o.maxOps,
		DrainTimeout:   o.drainTimeout,
		Workers:        o.workers,
		PoolIdle:       o.poolIdle,
	})
	for _, name := range strings.Split(o.programs, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		spec, err := server.Catalog(name, o.workers, o.chaosSeed)
		if err != nil {
			return nil, err
		}
		if err := s.Register(spec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func run(args []string) int {
	o, err := parseFlags(args)
	if err != nil {
		return 2
	}
	s, err := buildServer(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "delserver: %v\n", err)
		return 2
	}

	httpSrv := &http.Server{Addr: o.addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "delserver: serving %s on %s (max-concurrent=%d queue=%d chaos=%d)\n",
			strings.Join(s.Programs(), ","), o.addr, o.maxConcurrent, o.queueDepth, o.chaosSeed)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "delserver: listen: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: stop admitting, let in-flight runs finish up to the budget,
	// cancel stragglers — then close the listener so queued 503s flush.
	fmt.Fprintln(os.Stderr, "delserver: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout+5*time.Second)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "delserver: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "delserver: http shutdown: %v\n", err)
	}
	if leaks := s.LeakRuns(); leaks > 0 {
		fmt.Fprintf(os.Stderr, "delserver: FAILED block invariant: %d runs leaked (Allocated != Freed)\n", leaks)
		return 1
	}
	fmt.Fprintln(os.Stderr, "delserver: drained clean (0 leaked runs)")
	return 0
}
