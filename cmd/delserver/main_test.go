package main

import (
	"context"
	"testing"
	"time"

	"repro/internal/server"
)

// TestBuildServerWiring exercises the exact flag-to-server path the daemon
// runs: catalog registration, chaos arming, and one request end to end.
func TestBuildServerWiring(t *testing.T) {
	o, err := parseFlags([]string{
		"-programs", "jacobi,queens6", "-workers", "2",
		"-max-concurrent", "2", "-queue", "2", "-chaos", "1990",
		"-drain-timeout", "500ms",
	})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	s, err := buildServer(o)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	progs := s.Programs()
	if len(progs) != 2 || progs[0] != "jacobi" || progs[1] != "queens6" {
		t.Fatalf("programs = %v, want [jacobi queens6]", progs)
	}
	resp, apiErr := s.Execute(context.Background(), "queens6", server.RunRequest{})
	if apiErr != nil {
		t.Fatalf("run queens6: %v", apiErr)
	}
	if resp.Stats.BlocksAllocated != resp.Stats.BlocksFreed {
		t.Errorf("blocks allocated %d != freed %d", resp.Stats.BlocksAllocated, resp.Stats.BlocksFreed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if n := s.LeakRuns(); n != 0 {
		t.Errorf("leaked runs = %d", n)
	}
}

// TestBuildServerRejectsUnknownWorkload: a bad -programs entry fails fast
// at startup instead of 404ing at first request.
func TestBuildServerRejectsUnknownWorkload(t *testing.T) {
	o, err := parseFlags([]string{"-programs", "jacobi,bogus"})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if _, err := buildServer(o); err == nil {
		t.Fatal("buildServer accepted unknown workload 'bogus'")
	}
}
