// Command delc is the Delirium compiler front end: it compiles a program,
// reports per-pass timings and optimizer statistics, and can dump tokens,
// the analyzed tree, or the coordination graphs in Graphviz DOT form (the
// environment's visualization tool).
//
//	delc program.dlr                 compile, report pass times
//	delc -dot program.dlr            emit the coordination graphs as DOT
//	delc -ast program.dlr            print the analyzed program
//	delc -fmt program.dlr            pretty-print (format) the program
//	delc -tokens program.dlr         print the token stream
//	delc -memplan program.dlr        run the memory-plan pass, print the plan
//	delc -fuse program.dlr           run operator fusion, print the supernode plan
//	delc -fuse -profile p.json ...   seed fusion priorities from delprof -profout
//	delc -O -1 -cworkers 3 ...       optimization level / parallel compiler
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cli"
	"repro/internal/ast"
	"repro/internal/compile"
	"repro/internal/lexer"
	"repro/internal/parser"
	"repro/internal/source"
)

func main() {
	var (
		app      = flag.String("app", "builtins", "operator registry: builtins, queens, retina, ray, circuit")
		optLevel = flag.Int("O", 2, "optimization level (-1 none, 1 local, 2 full)")
		cworkers = flag.Int("cworkers", 1, "compiler workers (>1 uses the parallel compiler)")
		dot      = flag.Bool("dot", false, "emit coordination graphs as Graphviz DOT")
		dumpAST  = flag.Bool("ast", false, "print the analyzed program")
		format   = flag.Bool("fmt", false, "parse and pretty-print the program, then exit")
		tokens   = flag.Bool("tokens", false, "print the token stream and exit")
		memplan  = flag.Bool("memplan", false, "run the memory-plan pass and print the ownership report")
		fuse     = flag.Bool("fuse", false, "run the operator-fusion pass and print the supernode plan")
		profile  = flag.String("profile", "", "JSON operator-weight profile seeding fusion priorities (delprof -profout)")
		quiet    = flag.Bool("q", false, "suppress the pass-time report")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: delc [flags] program.dlr")
		flag.PrintDefaults()
		os.Exit(2)
	}

	name, src, err := cli.LoadSource(flag.Arg(0))
	fail(err)

	if *tokens {
		var diags source.DiagList
		toks := lexer.New(name, src, &diags).ScanAll()
		fmt.Print(lexer.Describe(toks))
		fail(diags.Err())
		return
	}

	if *format {
		var diags source.DiagList
		prog := parser.Parse(name, src, &diags)
		fail(diags.Err())
		fmt.Print(ast.PrintProgram(prog))
		return
	}

	reg, err := cli.Registry(*app)
	fail(err)
	prof, err := cli.LoadProfile(*profile)
	fail(err)
	res, err := compile.Compile(name, src, compile.Options{
		Registry: reg, OptLevel: *optLevel, Workers: *cworkers, MemPlan: *memplan,
		Fuse: *fuse, FuseProfile: prof})
	fail(err)
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, w)
	}

	switch {
	case *dot:
		fmt.Print(res.Program.Dot())
	case *dumpAST:
		fmt.Print(ast.PrintProgram(res.Info.Prog))
	case *memplan:
		fmt.Print(res.MemPlan.Report())
	case *fuse:
		fmt.Print(res.FusePlan.Report())
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr, "%-18s %10s\n", "Pass", "Time")
		for _, p := range res.Passes {
			fmt.Fprintf(os.Stderr, "%-18s %8.2fms\n", p.Name, float64(p.Nanos)/1e6)
		}
		fmt.Fprintf(os.Stderr, "%-18s %8.2fms\n", "Total", float64(res.TotalNanos())/1e6)
		fmt.Fprintf(os.Stderr, "optimizer: %s\n", res.OptStats)
		fmt.Fprintf(os.Stderr, "templates: %d, graph nodes: %d\n",
			len(res.Program.Templates), res.Program.NodeCount())
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "delc:", err)
		os.Exit(1)
	}
}
